//! Scheme 7 — hierarchical timing wheels (§6.2, Figures 10–11).
//!
//! A number of wheels of different granularities span a large interval range
//! with few slots: the paper's example uses 60 seconds + 60 minutes +
//! 24 hours + 100 days = 244 slots to cover 8.64 million ticks. A timer is
//! inserted into a coarse wheel and *migrates* toward finer wheels as its
//! expiry approaches, finally firing from the finest wheel at its exact
//! deadline.
//!
//! Two orthogonal design choices from §6.2 are exposed:
//!
//! * [`InsertRule`] — where a new timer is placed. `Digit` (default)
//!   reproduces the paper's worked example: the timer goes to the *highest*
//!   level at which the expiry time's mixed-radix digit differs from the
//!   current time's (the 50 m 45 s timer of Figure 10 lands in the *hour*
//!   array even though 50 m 45 s < 1 hour, because the hour digit changes
//!   from 10 to 11). `Covering` places it at the *lowest* level whose range
//!   covers the remaining interval, exploiting wrap-around to skip
//!   migrations — the variant used by modern implementations; the
//!   `ablation_insert_rule` bench quantifies the difference.
//! * [`MigrationPolicy`] — `Full` migrates to exactness; `None` and `Single`
//!   implement Wick Nichols' precision-for-work trade (§6.2): round the
//!   deadline to the insertion level's granularity and fire without (or with
//!   exactly one) migration.
//!
//! The per-level update timers of the paper ("there will always be a
//! 60 second timer that is used to update the minute array") are realized by
//! advancing each level's cursor whenever the clock crosses a multiple of
//! its granularity — the same schedule, without the self-referential timer
//! records (DESIGN.md, "Scheme 7 cascading"). The sibling
//! [`ClockworkWheel`](crate::wheel::ClockworkWheel) implements the literal
//! update-timer mechanism instead; a property test proves the two
//! observationally identical.

use alloc::vec::Vec;

use crate::arena::{ListHead, NodeIdx, TimerArena};
use crate::bitmap::SlotBitmap;
use crate::counters::{OpCounters, VaxCostModel};
use crate::handle::TimerHandle;
use crate::scheme::{Expired, TimerScheme};
use crate::time::{slot_index, ticks_of, Tick, TickDelta};
use crate::wheel::config::{LevelSizes, MigrationPolicy, OverflowPolicy};
use crate::TimerError;

/// Bucket tag for timers parked on the overflow list.
const OVERFLOW_BUCKET: usize = usize::MAX;

/// Flag bit (in `Node::aux`) marking a timer that has used its one allowed
/// migration under [`MigrationPolicy::Single`].
const MIGRATED_FLAG: u64 = 1 << 63;

/// Where a new timer is inserted into the hierarchy. See the
/// [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertRule {
    /// The paper's rule: highest level whose mixed-radix digit of the expiry
    /// time differs from the current time's.
    #[default]
    Digit,
    /// Lowest level whose range covers the remaining interval (modern
    /// wrap-around placement; fewer migrations).
    Covering,
}

struct Level {
    slots: Vec<ListHead>,
    /// Two-tier slot-occupancy bitmap for this level (zero-sized no-op
    /// without the `bitmap-cursor` feature); bit set ⇔ slot list non-empty.
    occupancy: SlotBitmap,
    granularity: u64,
    size: u64,
    base: usize,
}

/// Scheme 7: a hierarchy of timing wheels. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use tw_core::wheel::{HierarchicalWheel, LevelSizes};
/// use tw_core::{TickDelta, TimerScheme, TimerSchemeExt};
///
/// // The paper's clock: 60 s, 60 m, 24 h, 100 d in 244 slots.
/// let mut wheel: HierarchicalWheel<&str> = HierarchicalWheel::new(LevelSizes::clock());
/// wheel.start_timer(TickDelta(3_045), "50m45s").unwrap(); // 50 min 45 s
/// let fired = wheel.collect_ticks(3_045);
/// assert_eq!(fired.len(), 1);
/// assert_eq!(fired[0].error(), 0);
/// ```
pub struct HierarchicalWheel<T> {
    levels: Vec<Level>,
    now: Tick,
    range: u64,
    arena: TimerArena<T>,
    overflow: ListHead,
    overflow_policy: OverflowPolicy,
    migration_policy: MigrationPolicy,
    insert_rule: InsertRule,
    counters: OpCounters,
    cost: VaxCostModel,
}

impl<T> HierarchicalWheel<T> {
    /// Creates a hierarchy with the given level sizes (finest first) and
    /// default policies (`Digit` insert, `Full` migration, `Reject`
    /// overflow).
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is invalid (see [`LevelSizes::validate`]).
    #[must_use]
    pub fn new(sizes: LevelSizes) -> HierarchicalWheel<T> {
        HierarchicalWheel::build(
            sizes,
            InsertRule::default(),
            MigrationPolicy::default(),
            OverflowPolicy::default(),
        )
    }

    /// Shared constructor behind `new` and the validated
    /// [`WheelConfig`](crate::wheel::WheelConfig) path (which runs
    /// [`LevelSizes::try_validate`] before calling).
    pub(crate) fn build(
        sizes: LevelSizes,
        insert_rule: InsertRule,
        migration_policy: MigrationPolicy,
        overflow_policy: OverflowPolicy,
    ) -> HierarchicalWheel<T> {
        sizes.validate();
        let mut levels = Vec::with_capacity(sizes.0.len());
        let mut granularity = 1u64;
        let mut base = 0usize;
        for &size in &sizes.0 {
            let slots: Vec<ListHead> = (0..size).map(|_| ListHead::new()).collect();
            levels.push(Level {
                occupancy: SlotBitmap::new(slots.len()),
                slots,
                granularity,
                size,
                base,
            });
            base = base
                .checked_add(usize::try_from(size).expect("level size exceeds usize"))
                .expect("total slots exceed usize");
            assert!(
                base != OVERFLOW_BUCKET,
                "total slots collide with the overflow sentinel"
            );
            granularity = granularity.saturating_mul(size);
        }
        let range = sizes.range();
        HierarchicalWheel {
            levels,
            now: Tick::ZERO,
            range,
            arena: TimerArena::new(),
            overflow: ListHead::new(),
            overflow_policy,
            migration_policy,
            insert_rule,
            counters: OpCounters::new(),
            cost: VaxCostModel::PAPER,
        }
    }

    /// Number of levels in the hierarchy (the paper's `m`).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The largest interval accepted directly: one tick less than the
    /// product of the level sizes (the full product is indistinguishable
    /// from "now" in mixed-radix digits).
    #[must_use]
    pub fn max_interval(&self) -> TickDelta {
        TickDelta(self.range - 1)
    }

    /// Number of timers parked on the overflow list.
    #[must_use]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Slab slots ever allocated (memory high-water mark in records).
    #[must_use]
    pub fn arena_slots(&self) -> usize {
        self.arena.slot_count()
    }

    /// Returns which `(level, slot)` currently holds the timer, or `None`
    /// if the handle is stale or the timer is on the overflow list.
    #[must_use]
    pub fn locate(&self, handle: TimerHandle) -> Option<(usize, usize)> {
        let idx = self.arena.resolve(handle).ok()?;
        let bucket = self.arena.node(idx).bucket;
        if bucket == OVERFLOW_BUCKET {
            return None;
        }
        let level = self.level_of_bucket(bucket);
        Some((level, bucket - self.levels[level].base))
    }

    /// Number of timers in `slot` of `level` (test/experiment
    /// introspection).
    ///
    /// # Panics
    ///
    /// Panics if `level` or `slot` is out of range.
    #[must_use]
    pub fn level_slot_len(&self, level: usize, slot: usize) -> usize {
        self.levels[level].slots[slot].len()
    }

    fn level_of_bucket(&self, bucket: usize) -> usize {
        debug_assert!(bucket != OVERFLOW_BUCKET);
        // Level 0 has base 0, so every non-overflow tag matches at least
        // level 0.
        self.levels
            .iter()
            // tw-analyze: fact(loop_bounded, reason = "walks self.levels, whose length is the const level count fixed at construction; O(levels) by definition")
            .rposition(|l| l.base <= bucket)
            .unwrap_or(0)
    }

    /// Picks the insertion level for a timer whose (possibly rounded) firing
    /// target is `target`, per the configured [`InsertRule`].
    fn pick_level(&self, target: u64) -> usize {
        let now = self.now.as_u64();
        debug_assert!(target > now);
        match self.insert_rule {
            InsertRule::Digit => {
                // Highest level whose slot-period quotient changes between
                // now and the target — the paper's "which digit of the
                // expiry time differs" rule. The quotient is compared
                // unwrapped (no mod by the level size): a target a whole
                // revolution ahead must still select the coarser level.
                for (i, level) in self.levels.iter().enumerate().rev() {
                    if target / level.granularity != now / level.granularity {
                        return i;
                    }
                }
                // Level 0 has granularity 1, so target > now (asserted
                // above) always differs there; this fallthrough is exact.
                0
            }
            InsertRule::Covering => {
                let remaining = target - now;
                for (i, level) in self.levels.iter().enumerate() {
                    if remaining <= level.granularity.saturating_mul(level.size) {
                        return i;
                    }
                }
                // Rounding can push the target slightly past the top level's
                // range; top-level wrap-around placement still fires it (via
                // the early-visit path).
                self.levels.len() - 1
            }
        }
    }

    /// Links an allocated node into the wheel for firing target `target`
    /// (stored in `aux` alongside any migration flag already present).
    fn place(&mut self, idx: NodeIdx, target: u64) {
        let level = self.pick_level(target);
        let l = &self.levels[level];
        let slot = slot_index((target / l.granularity) % l.size);
        let bucket = l.base + slot;
        {
            let node = self.arena.node_mut(idx);
            node.aux = (node.aux & MIGRATED_FLAG) | target;
            node.bucket = bucket;
        }
        self.arena
            .push_back(&mut self.levels[level].slots[slot], idx);
        let ops = self.levels[level].occupancy.set(slot);
        self.counters.charge_bitmap(ops);
    }

    /// Rounds `t` to the nearest multiple of `g` (ties round up) — the
    /// Nichols "round off to the nearest hour" step.
    fn round_nearest(t: u64, g: u64) -> u64 {
        ((t + g / 2) / g) * g
    }

    /// Fires a node that has been unlinked from its slot.
    fn fire(&mut self, idx: NodeIdx, expired: &mut dyn FnMut(Expired<T>)) {
        let handle = self.arena.handle_of(idx);
        let deadline = self.arena.node(idx).deadline;
        let payload = self.arena.free(idx);
        self.counters.expiries += 1;
        self.counters.vax_instructions += self.cost.expire;
        expired(Expired {
            handle,
            payload,
            deadline,
            fired_at: self.now,
        });
    }

    /// Processes the slot the cursor of `level` has just reached: fire what
    /// is due, migrate or re-park the rest.
    fn process_slot(&mut self, level: usize, expired: &mut dyn FnMut(Expired<T>)) {
        let now = self.now.as_u64();
        let l = &self.levels[level];
        let slot = slot_index((now / l.granularity) % l.size);
        self.counters.vax_instructions += self.cost.skip_empty;
        if self.levels[level].slots[slot].is_empty() {
            self.counters.empty_slot_skips += 1;
            return;
        }
        self.counters.nonempty_slot_visits += 1;
        // Detach the whole list first: re-insertion may target this very
        // slot (next-revolution parking) and must not be re-processed now.
        let mut detached = core::mem::take(&mut self.levels[level].slots[slot]);
        // The slot is empty while its detached list is processed; a re-park
        // into this very slot re-sets the bit through `place`.
        let ops = self.levels[level].occupancy.clear(slot);
        self.counters.charge_bitmap(ops);
        while let Some(idx) = self.arena.pop_front(&mut detached) {
            self.counters.decrements += 1;
            self.counters.vax_instructions += self.cost.decrement_step;
            let aux = self.arena.node(idx).aux;
            let target = aux & !MIGRATED_FLAG;
            debug_assert!(target >= now, "scheme 7 missed a firing target");
            if target == now {
                self.fire(idx, expired);
                continue;
            }
            // Early visit: the target is in a later revolution of this
            // level, or (level > 0, Full policy) this is the scheduled
            // migration point.
            match self.migration_policy {
                MigrationPolicy::Full => {
                    self.counters.migrations += 1;
                    self.counters.vax_instructions += self.cost.insert;
                    self.place(idx, target);
                }
                MigrationPolicy::None => {
                    // Await the exact target revolution in place.
                    self.counters.migrations += 1;
                    self.counters.vax_instructions += self.cost.insert;
                    self.place(idx, target);
                }
                MigrationPolicy::Single => {
                    if aux & MIGRATED_FLAG != 0 || level == 0 {
                        // Already migrated (or finest level): wait in place
                        // for the target revolution.
                        self.place(idx, target);
                    } else {
                        // One migration to the adjacent finer level, rounding
                        // the target to that level's granularity.
                        let g = self.levels[level - 1].granularity;
                        let rounded = Self::round_nearest(target, g).max(now + 1);
                        self.arena.node_mut(idx).aux = MIGRATED_FLAG | target;
                        self.counters.migrations += 1;
                        self.counters.vax_instructions += self.cost.insert;
                        self.place(idx, rounded);
                    }
                }
            }
        }
    }

    /// Re-examines the overflow list, admitting timers now within range.
    fn drain_overflow(&mut self) {
        let now = self.now.as_u64();
        let mut cur = self.overflow.first();
        // tw-analyze: fact(loop_bounded, reason = "walks the overflow list once per top-level revolution; the amortized section 6.2 cascade argument charges each resident one move per level, and the revolution period divides the walk across range ticks")
        while let Some(idx) = cur {
            cur = self.arena.next(idx);
            let target = self.arena.node(idx).aux & !MIGRATED_FLAG;
            debug_assert!(target > now, "overflowed timer already due");
            if target - now < self.range {
                self.arena.unlink(&mut self.overflow, idx);
                self.counters.migrations += 1;
                self.counters.vax_instructions += self.cost.insert;
                self.place(idx, target);
            } else {
                self.counters.decrements += 1;
                self.counters.vax_instructions += self.cost.decrement_step;
            }
        }
    }

    /// Advances the clock by `k` ticks known to process only empty slots:
    /// no level's cursor crosses an occupied slot and no overflow
    /// re-examination boundary falls inside the window, so only the clock
    /// and the tick counter move.
    #[cfg(feature = "bitmap-cursor")]
    fn skip_empty_ticks(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        self.now = Tick(self.now.as_u64() + k);
        self.counters.ticks += k;
    }
}

impl<T> TimerScheme<T> for HierarchicalWheel<T> {
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let max = self.max_interval();
        let (interval, park) = if interval <= max {
            (interval, false)
        } else {
            match self.overflow_policy.apply(max)? {
                Some(clamped) => (clamped, false),
                None => (interval, true),
            }
        };
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let (idx, handle) = self.arena.alloc(payload, deadline)?;
        self.counters.starts += 1;
        self.counters.vax_instructions += self.cost.insert;
        if park {
            let node = self.arena.node_mut(idx);
            node.aux = deadline.as_u64();
            node.bucket = OVERFLOW_BUCKET;
            self.arena.push_back(&mut self.overflow, idx);
            return Ok(handle);
        }
        let target = match self.migration_policy {
            MigrationPolicy::Full | MigrationPolicy::Single => deadline.as_u64(),
            MigrationPolicy::None => {
                // Round to the insertion level's granularity up front; the
                // timer will fire without migrating (§6.2, Nichols).
                let level = self.pick_level(deadline.as_u64());
                let g = self.levels[level].granularity;
                Self::round_nearest(deadline.as_u64(), g).max(self.now.as_u64() + 1)
            }
        };
        self.place(idx, target);
        Ok(handle)
    }

    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError> {
        let idx = self.arena.resolve(handle)?;
        let bucket = self.arena.node(idx).bucket;
        if bucket == OVERFLOW_BUCKET {
            self.arena.unlink(&mut self.overflow, idx);
        } else {
            let level = self.level_of_bucket(bucket);
            // tw-analyze: fact(slot_bounded, reason = "bucket tags are only written by the insert paths from modular placement, and level_of_bucket proves base <= bucket < base + size, so the difference is a valid in-level slot")
            let slot = bucket - self.levels[level].base;
            self.arena.unlink(&mut self.levels[level].slots[slot], idx);
            if self.levels[level].slots[slot].is_empty() {
                let ops = self.levels[level].occupancy.clear(slot);
                self.counters.charge_bitmap(ops);
            }
        }
        self.counters.stops += 1;
        self.counters.vax_instructions += self.cost.delete;
        Ok(self.arena.free(idx))
    }

    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let max = self.max_interval();
        let (interval, park) = if interval <= max {
            (interval, false)
        } else {
            match self.overflow_policy.apply(max)? {
                Some(clamped) => (clamped, false),
                None => (interval, true),
            }
        };
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let idx = self.arena.resolve(handle)?;
        // All validation passed — from here the restart cannot fail. Unlink
        // from the current home (any level, or the overflow list); the node
        // never touches the free list, so the client's handle (and its
        // generation) stay valid.
        let bucket = self.arena.node(idx).bucket;
        if bucket == OVERFLOW_BUCKET {
            self.arena.unlink(&mut self.overflow, idx);
        } else {
            let level = self.level_of_bucket(bucket);
            // tw-analyze: fact(slot_bounded, reason = "bucket tags are only written by the insert paths from modular placement, and level_of_bucket proves base <= bucket < base + size, so the difference is a valid in-level slot")
            let slot = bucket - self.levels[level].base;
            self.arena.unlink(&mut self.levels[level].slots[slot], idx);
            if self.levels[level].slots[slot].is_empty() {
                let ops = self.levels[level].occupancy.clear(slot);
                self.counters.charge_bitmap(ops);
            }
        }
        self.arena.node_mut(idx).deadline = deadline;
        self.counters.restarts += 1;
        // Modeled as one §7 delete followed by one insert, matching the
        // unlink+relink the update actually performs.
        self.counters.vax_instructions += self.cost.delete + self.cost.insert;
        if park {
            let node = self.arena.node_mut(idx);
            node.aux = deadline.as_u64();
            node.bucket = OVERFLOW_BUCKET;
            self.arena.push_back(&mut self.overflow, idx);
            return Ok(());
        }
        let target = match self.migration_policy {
            MigrationPolicy::Full | MigrationPolicy::Single => deadline.as_u64(),
            MigrationPolicy::None => {
                let level = self.pick_level(deadline.as_u64());
                let g = self.levels[level].granularity;
                Self::round_nearest(deadline.as_u64(), g).max(self.now.as_u64() + 1)
            }
        };
        // A restart behaves like a fresh start, so the one-migration budget
        // of `MigrationPolicy::Single` is granted anew: clear the flag
        // before `place` (which preserves whatever flag bit is present).
        self.arena.node_mut(idx).aux = 0;
        self.place(idx, target);
        Ok(())
    }

    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>)) {
        self.now = self.now.next();
        self.counters.ticks += 1;
        let now = self.now.as_u64();
        // The finest level advances every tick; coarser levels advance when
        // the clock crosses a multiple of their granularity (the paper's
        // per-level update timers). Lower levels first, so migrations out of
        // a coarse slot land in fine slots that have already been flushed
        // this tick only when genuinely due later.
        self.process_slot(0, expired);
        for level in 1..self.levels.len() {
            if now % self.levels[level].granularity == 0 {
                self.process_slot(level, expired);
            }
        }
        if !self.overflow.is_empty()
            && self
                .levels
                .last()
                .is_some_and(|top| now % top.granularity == 0)
        {
            self.drain_overflow();
        }
    }

    #[cfg(feature = "bitmap-cursor")]
    fn advance_to_with(&mut self, deadline: Tick, expired: &mut dyn FnMut(Expired<T>)) {
        // tw-analyze: fact(loop_bounded, reason = "each iteration either does real per-tick work (an occupied slot on some level) or jumps a whole empty stretch via the per-level occupancy bitmaps; iterations are bounded by occupied-slot events, not elapsed ticks")
        while self.now < deadline {
            let now = self.now.as_u64();
            let remaining = deadline.since(self.now).as_u64();
            // Earliest tick (as a delta from `now`) at which any level's
            // cursor reaches an occupied slot. Every resident timer at a
            // level of granularity g satisfies target / g ≥ now / g + 1
            // (both insert rules and every re-park guarantee it), so the
            // visit that fires or migrates it is never behind the probe.
            let mut event = u64::MAX;
            let mut probes = 0u64;
            for l in &self.levels {
                let q = now / l.granularity;
                probes += 1;
                if let Some(dl) = l.occupancy.next_occupied_delta(slot_index(q % l.size)) {
                    if let Some(at) = q.checked_add(dl).and_then(|v| v.checked_mul(l.granularity)) {
                        event = event.min(at - now);
                    }
                }
            }
            self.counters.charge_bitmap(probes);
            if !self.overflow.is_empty() {
                // Overflow is re-examined whenever the clock crosses a
                // multiple of the coarsest granularity.
                let g = self.levels[self.levels.len() - 1].granularity;
                if let Some(at) = (now / g).checked_add(1).and_then(|v| v.checked_mul(g)) {
                    event = event.min(at - now);
                }
            }
            if event > remaining {
                self.skip_empty_ticks(remaining);
                return;
            }
            self.skip_empty_ticks(event - 1);
            self.tick(expired);
        }
    }

    fn now(&self) -> Tick {
        self.now
    }

    fn outstanding(&self) -> usize {
        self.arena.len()
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        self.arena.set_capacity_limit(limit);
        true
    }

    fn name(&self) -> &'static str {
        match (self.insert_rule, self.migration_policy) {
            (InsertRule::Digit, MigrationPolicy::Full) => "scheme7(hier-digit)",
            (InsertRule::Digit, MigrationPolicy::None) => "scheme7(hier-digit-nomig)",
            (InsertRule::Digit, MigrationPolicy::Single) => "scheme7(hier-digit-1mig)",
            (InsertRule::Covering, MigrationPolicy::Full) => "scheme7(hier-covering)",
            (InsertRule::Covering, MigrationPolicy::None) => "scheme7(hier-covering-nomig)",
            (InsertRule::Covering, MigrationPolicy::Single) => "scheme7(hier-covering-1mig)",
        }
    }
}

impl<T> crate::validate::InvariantCheck for HierarchicalWheel<T> {
    /// Scheme 7 resting-state invariants: the granularity/base chain of the
    /// level geometry, per-level slot congruence
    /// (`slot = (target / granularity) mod size`), strictly-future firing
    /// targets, the migration flag only under `MigrationPolicy::Single`,
    /// `target == deadline` under full migration, intact lists, and node
    /// count equal to `outstanding`.
    fn check_invariants(&self) -> Result<(), crate::validate::InvariantViolation> {
        use crate::validate::InvariantViolation;
        let scheme = self.name();
        let fail = |detail: alloc::string::String| Err(InvariantViolation::new(scheme, detail));
        let now = self.now.as_u64();
        if let Err(detail) = self.arena.check_storage() {
            return fail(detail);
        }
        let mut granularity = 1u64;
        let mut base = 0usize;
        for (i, level) in self.levels.iter().enumerate() {
            if level.granularity != granularity || level.base != base {
                return fail(alloc::format!(
                    "level {i} geometry drift: granularity {} base {} \
                     (expected {granularity}/{base})",
                    level.granularity,
                    level.base
                ));
            }
            if level.size != ticks_of(level.slots.len()) {
                return fail(alloc::format!("level {i} size/slot-count mismatch"));
            }
            granularity = granularity.saturating_mul(level.size);
            base += level.slots.len();
        }
        let mut linked = 0usize;
        for (i, level) in self.levels.iter().enumerate() {
            for (slot, list) in level.slots.iter().enumerate() {
                let nodes = match self.arena.check_list(list) {
                    Ok(nodes) => nodes,
                    Err(detail) => return fail(alloc::format!("level {i} slot {slot}: {detail}")),
                };
                linked += nodes.len();
                if !level.occupancy.agrees_with(slot, !nodes.is_empty()) {
                    return fail(alloc::format!(
                        "level {i} occupancy bitmap disagrees with slot {slot} \
                         (list len {} so expected occupied={})",
                        nodes.len(),
                        !nodes.is_empty()
                    ));
                }
                for idx in nodes {
                    let node = self.arena.node(idx);
                    let target = node.aux & !MIGRATED_FLAG;
                    if node.aux & MIGRATED_FLAG != 0
                        && self.migration_policy != MigrationPolicy::Single
                    {
                        return fail(alloc::format!(
                            "migration flag set under {:?}",
                            self.migration_policy
                        ));
                    }
                    if node.bucket != level.base + slot {
                        return fail(alloc::format!(
                            "node in level {i} slot {slot} tagged bucket {}",
                            node.bucket
                        ));
                    }
                    if target <= now {
                        return fail(alloc::format!(
                            "firing target {target} is not in the future (now {now})"
                        ));
                    }
                    if slot_index((target / level.granularity) % level.size) != slot {
                        return fail(alloc::format!(
                            "level {i} slot congruence: target {target} / {} mod {} != {slot}",
                            level.granularity,
                            level.size
                        ));
                    }
                    if self.migration_policy == MigrationPolicy::Full
                        && target != node.deadline.as_u64()
                    {
                        return fail(alloc::format!(
                            "full migration but target {target} != deadline {}",
                            node.deadline.as_u64()
                        ));
                    }
                }
            }
        }
        let overflow = match self.arena.check_list(&self.overflow) {
            Ok(nodes) => nodes,
            Err(detail) => return fail(alloc::format!("overflow list: {detail}")),
        };
        linked += overflow.len();
        for idx in overflow {
            let node = self.arena.node(idx);
            if node.bucket != OVERFLOW_BUCKET {
                return fail(alloc::format!(
                    "overflow node tagged bucket {} instead of the sentinel",
                    node.bucket
                ));
            }
            if node.aux & !MIGRATED_FLAG != node.deadline.as_u64() {
                return fail(alloc::format!(
                    "overflow target {} != deadline {}",
                    node.aux & !MIGRATED_FLAG,
                    node.deadline.as_u64()
                ));
            }
            if node.deadline.as_u64() <= now {
                return fail(alloc::format!(
                    "overflow-parked deadline {} is not in the future (now {now})",
                    node.deadline.as_u64()
                ));
            }
        }
        if linked != self.arena.len() {
            return fail(alloc::format!(
                "{linked} nodes on lists but {} outstanding",
                self.arena.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::TimerSchemeExt;

    fn small() -> LevelSizes {
        LevelSizes(vec![8, 8, 8]) // range 512
    }

    #[test]
    fn fires_exactly_across_levels_digit_rule() {
        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::new(small());
        for &j in &[1u64, 7, 8, 9, 63, 64, 65, 100, 511] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(511);
        let got: Vec<(u64, u64)> = fired
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        let want: Vec<(u64, u64)> = [1u64, 7, 8, 9, 63, 64, 65, 100, 511]
            .iter()
            .map(|&j| (j, j))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fires_exactly_across_levels_covering_rule() {
        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::build(
            small(),
            InsertRule::Covering,
            MigrationPolicy::Full,
            OverflowPolicy::Reject,
        );
        for &j in &[1u64, 8, 9, 64, 65, 100, 300, 511] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(511);
        for e in &fired {
            assert_eq!(e.error(), 0);
            assert_eq!(e.fired_at.as_u64(), e.payload);
        }
        assert_eq!(fired.len(), 8);
    }

    #[test]
    fn fig10_fig11_worked_example() {
        // §6.2: current time 11 days 10:24:30; set a timer for 50 m 45 s.
        // Figure 10: it lands in the hour array, slot 11, holding the
        // remainder 15 m 15 s. Figure 11: when the hour hand reaches 11, the
        // remainder moves to minute slot 15; finally to second slot 15.
        let mut w: HierarchicalWheel<()> = HierarchicalWheel::new(LevelSizes::clock());
        let now = ((11 * 24 + 10) * 60 + 24) * 60 + 30; // 987_870
        w.run_ticks(now);
        let h = w.start_timer(TickDelta(50 * 60 + 45), ()).unwrap();
        // Levels: 0 = seconds, 1 = minutes, 2 = hours, 3 = days.
        assert_eq!(w.locate(h), Some((2, 11)), "Figure 10: hour array, slot 11");

        // Advance to 11:00:00 — the hour hand reaches 11 (Figure 11).
        let at_hour = (11 * 24 + 11) * 3600; // 990_000
        assert!(w.advance_to(Tick(at_hour)).is_empty());
        assert_eq!(
            w.locate(h),
            Some((1, 15)),
            "Figure 11: minute array, slot 15"
        );

        // Advance to 11:15:00 — remainder moves to the second array.
        assert!(w.advance_to(Tick(at_hour + 15 * 60)).is_empty());
        assert_eq!(w.locate(h), Some((0, 15)), "second array, slot 15");

        // 15 seconds later the timer actually expires.
        let fired = w.collect_ticks(15);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(990_915));
        assert_eq!(fired[0].error(), 0);
    }

    #[test]
    fn digit_rule_counts_migrations_bounded_by_levels() {
        let mut w: HierarchicalWheel<()> = HierarchicalWheel::new(small());
        w.start_timer(TickDelta(500), ()).unwrap(); // spans all 3 levels
        w.run_ticks(500);
        let c = w.counters();
        assert_eq!(c.expiries, 1);
        // At most m-1 = 2 migrations for a 3-level hierarchy.
        assert!(c.migrations <= 2, "migrations = {}", c.migrations);
    }

    #[test]
    fn covering_rule_skips_migrations_when_wraparound_suffices() {
        let mut wd: HierarchicalWheel<()> = HierarchicalWheel::new(small());
        let mut wc: HierarchicalWheel<()> = HierarchicalWheel::build(
            small(),
            InsertRule::Covering,
            MigrationPolicy::Full,
            OverflowPolicy::Reject,
        );
        // Move both clocks so digit boundaries sit just ahead.
        wd.run_ticks(7);
        wc.run_ticks(7);
        wd.start_timer(TickDelta(5), ()).unwrap();
        wc.start_timer(TickDelta(5), ()).unwrap();
        wd.run_ticks(5);
        wc.run_ticks(5);
        // Digit rule crosses the level-1 boundary (7+5=12, digit 1 differs) and
        // must migrate; covering rule goes straight to level 0.
        assert_eq!(wc.counters().migrations, 0);
        assert!(wd.counters().migrations >= 1);
        assert_eq!(wd.counters().expiries, 1);
        assert_eq!(wc.counters().expiries, 1);
    }

    #[test]
    fn no_migration_policy_error_bounded_by_half_granularity() {
        let sizes = LevelSizes(vec![16, 16]); // level 1 granularity 16
        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::build(
            sizes,
            InsertRule::Digit,
            MigrationPolicy::None,
            OverflowPolicy::Reject,
        );
        for j in 17..200u64 {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(400);
        assert_eq!(fired.len(), 183);
        for e in &fired {
            // Rounded to the nearest multiple of 16: |error| ≤ 8.
            assert!(
                e.error().abs() <= 8,
                "error {} for j={}",
                e.error(),
                e.payload
            );
        }
        // No migrations performed at all is the point of the policy — but
        // revolution-overshoot reparks may occur; firing without cascading
        // is what we verify via error bound + expiry count.
    }

    #[test]
    fn single_migration_policy_tightens_error() {
        let sizes = LevelSizes(vec![16, 16, 16]); // granularities 1, 16, 256
        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::build(
            sizes.clone(),
            InsertRule::Digit,
            MigrationPolicy::Single,
            OverflowPolicy::Reject,
        );
        // Timers big enough to start at level 2 (digit differs at level 2).
        for k in 1..10u64 {
            let j = 256 * k + 37;
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(256 * 10 + 64);
        assert_eq!(fired.len(), 9);
        for e in &fired {
            // One migration to the 16-tick level: |error| ≤ 8, much tighter
            // than the 128-tick bound of never migrating from level 2.
            assert!(
                e.error().abs() <= 8,
                "error {} for j={}",
                e.error(),
                e.payload
            );
        }
    }

    #[test]
    fn overflow_policies() {
        let sizes = LevelSizes(vec![4, 4]); // range 16, max interval 15
        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::build(
            sizes.clone(),
            InsertRule::Digit,
            MigrationPolicy::Full,
            OverflowPolicy::Reject,
        );
        assert_eq!(
            w.start_timer(TickDelta(16), 0),
            Err(TimerError::IntervalOutOfRange { max: TickDelta(15) })
        );

        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::build(
            sizes.clone(),
            InsertRule::Digit,
            MigrationPolicy::Full,
            OverflowPolicy::OverflowList,
        );
        w.start_timer(TickDelta(50), 50).unwrap();
        assert_eq!(w.overflow_len(), 1);
        let fired = w.collect_ticks(50);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(50));
        assert_eq!(fired[0].error(), 0);

        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::build(
            sizes,
            InsertRule::Digit,
            MigrationPolicy::Full,
            OverflowPolicy::Cap,
        );
        w.start_timer(TickDelta(50), 50).unwrap();
        let fired = w.collect_ticks(15);
        assert_eq!(fired.len(), 1, "capped timer fires at max interval");
    }

    #[test]
    fn stop_timer_at_any_level_and_overflow() {
        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::build(
            small(),
            InsertRule::Digit,
            MigrationPolicy::Full,
            OverflowPolicy::OverflowList,
        );
        let h1 = w.start_timer(TickDelta(3), 1).unwrap(); // level 0
        let h2 = w.start_timer(TickDelta(60), 2).unwrap(); // level 1+
        let h3 = w.start_timer(TickDelta(400), 3).unwrap(); // level 2
        let h4 = w.start_timer(TickDelta(10_000), 4).unwrap(); // overflow
        assert_eq!(w.outstanding(), 4);
        assert_eq!(w.stop_timer(h2), Ok(2));
        assert_eq!(w.stop_timer(h4), Ok(4));
        assert_eq!(w.stop_timer(h1), Ok(1));
        assert_eq!(w.stop_timer(h3), Ok(3));
        assert_eq!(w.outstanding(), 0);
        assert!(w.collect_ticks(600).is_empty());
        assert_eq!(w.stop_timer(h1), Err(TimerError::Stale));
    }

    #[test]
    fn clock_hierarchy_spans_paper_range_cheaply() {
        let w: HierarchicalWheel<()> = HierarchicalWheel::new(LevelSizes::clock());
        assert_eq!(w.max_interval(), TickDelta(8_640_000 - 1));
        assert_eq!(w.level_count(), 4);
    }

    #[test]
    fn timer_exact_at_range_minus_one() {
        let sizes = LevelSizes(vec![4, 4, 4]); // range 64
        let mut w: HierarchicalWheel<()> = HierarchicalWheel::new(sizes);
        w.run_ticks(13); // misalign the clock
        w.start_timer(TickDelta(63), ()).unwrap();
        let fired = w.collect_ticks(63);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].error(), 0);
    }

    #[test]
    fn dense_random_intervals_all_fire_exactly() {
        // A cheap deterministic pseudo-random sweep (LCG) across the range.
        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::new(small());
        let mut x = 12345u64;
        let mut expect = Vec::new();
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = x % 511 + 1;
            w.start_timer(TickDelta(j), j).unwrap();
            expect.push(j);
        }
        let fired = w.collect_ticks(512);
        assert_eq!(fired.len(), 200);
        for e in &fired {
            assert_eq!(e.error(), 0, "interval {}", e.payload);
        }
    }

    #[cfg(feature = "bitmap-cursor")]
    #[test]
    fn bitmap_advance_matches_per_tick_loop_across_levels() {
        let make = || {
            let mut w: HierarchicalWheel<u64> = HierarchicalWheel::build(
                small(),
                InsertRule::Digit,
                MigrationPolicy::Full,
                OverflowPolicy::OverflowList,
            );
            // Spread across all three levels plus the overflow list
            // (range 512, so 700 parks and is admitted at a 64-boundary).
            for &j in &[3u64, 64, 65, 300, 511, 700] {
                w.start_timer(TickDelta(j), j).unwrap();
            }
            w
        };
        let mut fast = make();
        let mut slow = make();
        let mut got = Vec::new();
        fast.advance_to_with(Tick(800), &mut |e| {
            got.push((e.payload, e.fired_at.as_u64()))
        });
        let want: Vec<(u64, u64)> = slow
            .collect_ticks(800)
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        assert_eq!(got, want, "fast path must reproduce the per-tick trace");
        assert_eq!(fast.now(), Tick(800));
        assert_eq!(fast.outstanding(), 0);
        crate::validate::InvariantCheck::check_invariants(&fast).unwrap();
    }

    #[cfg(feature = "bitmap-cursor")]
    #[test]
    fn bitmap_advance_skips_empty_hierarchy_ticks() {
        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::new(small());
        w.start_timer(TickDelta(500), 500).unwrap();
        let fired = w.advance_to(Tick(500));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].error(), 0);
        let c = w.counters();
        assert_eq!(c.ticks, 500, "virtual time must still cover every tick");
        // Only three real ticks run: the level-2 visit at 448 (migration),
        // the level-1 visit at 496 (migration), and the firing tick at 500.
        // The tick at 448 also processes the empty level-0 and level-1 slots
        // (2 skips) and the tick at 496 the empty level-0 slot (1 skip) —
        // everything else is jumped over by the bitmap cursor.
        assert_eq!(c.empty_slot_skips, 3);
        assert_eq!(c.nonempty_slot_visits, 3);
        assert_eq!(c.migrations, 2);
        assert!(c.bitmap_ops > 0);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn zero_interval_rejected() {
        let mut w: HierarchicalWheel<()> = HierarchicalWheel::new(small());
        assert_eq!(
            w.start_timer(TickDelta::ZERO, ()),
            Err(TimerError::ZeroInterval)
        );
    }

    #[test]
    fn restart_rearms_across_levels_with_the_same_handle() {
        let mut w: HierarchicalWheel<&str> = HierarchicalWheel::new(small());
        // Starts at level 0, restarted into level 2 territory.
        let h = w.start_timer(TickDelta(3), "x").unwrap();
        w.restart_timer(h, TickDelta(400)).unwrap();
        assert!(w.collect_ticks(3).is_empty());
        let fired = w.collect_ticks(397);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(400));
        assert_eq!(fired[0].handle, h);
        assert_eq!(fired[0].error(), 0);
        assert_eq!(w.counters().restarts, 1);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn restart_moves_between_levels_and_overflow() {
        let mut w: HierarchicalWheel<u32> = HierarchicalWheel::build(
            small(),
            InsertRule::Digit,
            MigrationPolicy::Full,
            OverflowPolicy::OverflowList,
        );
        let h = w.start_timer(TickDelta(2), 7).unwrap();
        // In-range → overflow-parked (range is 512).
        w.restart_timer(h, TickDelta(10_000)).unwrap();
        assert_eq!(w.overflow_len(), 1);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        // Overflow-parked → back in range, pulled earlier.
        w.restart_timer(h, TickDelta(5)).unwrap();
        assert_eq!(w.overflow_len(), 0);
        let fired = w.collect_ticks(5);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(5));
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn restart_grants_a_fresh_single_migration_budget() {
        let sizes = LevelSizes(vec![16, 16, 16]);
        let mut w: HierarchicalWheel<u64> = HierarchicalWheel::build(
            sizes,
            InsertRule::Digit,
            MigrationPolicy::Single,
            OverflowPolicy::Reject,
        );
        let j = 256 * 3 + 37;
        let h = w.start_timer(TickDelta(j), j).unwrap();
        // Let the timer take its one allowed migration, then restart it:
        // the budget resets, so the rounding error stays within the
        // one-migration bound (|error| ≤ 8 for a 16-tick middle level).
        w.advance_to(Tick(512));
        w.restart_timer(h, TickDelta(256 * 2 + 37)).unwrap();
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        let fired = w.advance_to(Tick(512 + 256 * 3));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].error().abs() <= 8, "error {}", fired[0].error());
    }

    #[test]
    fn failed_restart_leaves_the_timer_armed() {
        let mut w: HierarchicalWheel<()> = HierarchicalWheel::new(small());
        let h = w.start_timer(TickDelta(4), ()).unwrap();
        assert_eq!(
            w.restart_timer(h, TickDelta::ZERO),
            Err(TimerError::ZeroInterval)
        );
        assert_eq!(
            w.restart_timer(h, TickDelta(512)),
            Err(TimerError::IntervalOutOfRange {
                max: TickDelta(511)
            })
        );
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        let fired = w.collect_ticks(4);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(4));
        assert_eq!(w.restart_timer(h, TickDelta(1)), Err(TimerError::Stale));
    }
}
