//! The §5 hybrid: a timing wheel for near timers backed by an ordered list
//! for far ones.
//!
//! "Still memory is finite: it is difficult to justify 2³² words of memory
//! to implement 32 bit timers. One solution is to implement timers within
//! some range using this scheme and the allowed memory. Timers greater than
//! this value are implemented using, say, Scheme 2."
//!
//! [`HybridWheel`] is that sentence, built: intervals up to the wheel size
//! go straight into a Scheme 4 array (O(1) start, exact O(1) tick); longer
//! intervals sit on a Scheme 2 ordered list whose *head* is checked once per
//! tick — when the head comes within a revolution of now it migrates into
//! the array. Start is therefore O(1) for near timers and O(f) in the
//! number of far timers; `PER_TICK_BOOKKEEPING` stays O(1) plus one head
//! compare. Hashing (Scheme 6) and hierarchy (Scheme 7) are the paper's two
//! *better* answers to the same memory problem; this hybrid is the
//! strawman they improve on, kept honest here so experiments can compare.

use alloc::vec::Vec;

use crate::arena::{ListHead, NodeIdx, TimerArena};
use crate::bitmap::SlotBitmap;
use crate::counters::{OpCounters, VaxCostModel};
use crate::handle::TimerHandle;
use crate::scheme::{Expired, TimerScheme};
use crate::time::{ticks_of, Tick, TickDelta};
use crate::TimerError;

/// Bucket tag for timers parked on the far (ordered) list.
const FAR_BUCKET: usize = usize::MAX;

/// The §5 wheel + ordered-list hybrid. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use tw_core::wheel::HybridWheel;
/// use tw_core::{TickDelta, TimerScheme, TimerSchemeExt};
///
/// // 64 slots of wheel; longer intervals ride the ordered list.
/// let mut w: HybridWheel<&str> = HybridWheel::new(64);
/// w.start_timer(TickDelta(5), "near").unwrap();
/// w.start_timer(TickDelta(5_000), "far").unwrap();
/// assert_eq!(w.far_len(), 1);
/// let fired = w.collect_ticks(5_000);
/// assert_eq!(fired.len(), 2);
/// assert!(fired.iter().all(|e| e.error() == 0));
/// ```
pub struct HybridWheel<T> {
    slots: Vec<ListHead>,
    cursor: usize,
    now: Tick,
    /// Far timers, sorted ascending by deadline (Scheme 2).
    far: ListHead,
    arena: TimerArena<T>,
    /// Two-tier occupancy bitmap over the wheel slots (zero-sized no-op
    /// without the `bitmap-cursor` feature). The far list needs none: its
    /// head is the only thing ever examined.
    occupancy: SlotBitmap,
    counters: OpCounters,
    cost: VaxCostModel,
}

impl<T> HybridWheel<T> {
    /// Creates a hybrid with `wheel_slots` array slots.
    ///
    /// # Panics
    ///
    /// Panics if `wheel_slots` is zero.
    #[must_use]
    pub fn new(wheel_slots: usize) -> HybridWheel<T> {
        assert!(wheel_slots > 0, "wheel needs at least one slot");
        HybridWheel {
            slots: (0..wheel_slots).map(|_| ListHead::new()).collect(),
            cursor: 0,
            now: Tick::ZERO,
            far: ListHead::new(),
            arena: TimerArena::new(),
            occupancy: SlotBitmap::new(wheel_slots),
            counters: OpCounters::new(),
            cost: VaxCostModel::PAPER,
        }
    }

    /// Advances the clock and cursor over `k` ticks proven free of slot
    /// flushes and far-head migrations: no per-slot examination, no head
    /// compare, no `empty_slot_skips`.
    #[cfg(feature = "bitmap-cursor")]
    fn skip_empty_ticks(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        self.now = Tick(self.now.as_u64() + k);
        self.cursor = self.now.slot_in(self.slots.len());
        self.counters.ticks += k;
    }

    /// Number of timers currently on the far list.
    #[must_use]
    pub fn far_len(&self) -> usize {
        self.far.len()
    }

    /// The wheel's direct range.
    #[must_use]
    pub fn wheel_range(&self) -> TickDelta {
        TickDelta::table_span(self.slots.len())
    }

    /// Arena slots ever allocated — the storage high-water mark. See
    /// [`TimerArena::slot_count`](crate::arena::TimerArena::slot_count).
    #[must_use]
    pub fn arena_slots(&self) -> usize {
        self.arena.slot_count()
    }

    fn enqueue_wheel(&mut self, idx: NodeIdx) {
        let deadline = self.arena.node(idx).deadline;
        let remaining = deadline.since(self.now);
        debug_assert!(!remaining.is_zero() && remaining <= self.wheel_range());
        // `cursor ≡ now (mod N)`, so the deadline's residue IS the slot the
        // cursor visits at exactly that tick.
        let slot = deadline.slot_in(self.slots.len());
        self.arena.node_mut(idx).bucket = slot;
        self.arena.push_back(&mut self.slots[slot], idx);
        let ops = self.occupancy.set(slot);
        self.counters.charge_bitmap(ops);
    }

    /// Sorted insert into the far list (Scheme 2, front search).
    fn insert_far(&mut self, idx: NodeIdx, deadline: Tick) {
        self.arena.node_mut(idx).bucket = FAR_BUCKET;
        let mut at = self.far.first();
        let mut steps = 0u64;
        // tw-analyze: fact(loop_bounded, reason = "sorted-insert walk of the far list: only timers beyond one wheel revolution land here, so the walk prices the Scheme 2 half of the hybrid exactly as section 6.1.1 documents -- O(1) average, charged to the steps counter")
        while let Some(cur) = at {
            steps += 1;
            if self.arena.node(cur).deadline > deadline {
                break;
            }
            at = self.arena.next(cur);
        }
        self.counters.start_steps += steps;
        self.counters.vax_instructions += steps * self.cost.decrement_step;
        match at {
            Some(before) => self.arena.insert_before(&mut self.far, before, idx),
            None => self.arena.push_back(&mut self.far, idx),
        }
    }
}

impl<T> TimerScheme<T> for HybridWheel<T> {
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let (idx, handle) = self.arena.alloc(payload, deadline)?;
        if interval <= self.wheel_range() {
            self.enqueue_wheel(idx);
        } else {
            self.insert_far(idx, deadline);
        }
        self.counters.starts += 1;
        self.counters.vax_instructions += self.cost.insert;
        Ok(handle)
    }

    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError> {
        let idx = self.arena.resolve(handle)?;
        let bucket = self.arena.node(idx).bucket;
        if bucket == FAR_BUCKET {
            self.arena.unlink(&mut self.far, idx);
        } else {
            self.arena.unlink(&mut self.slots[bucket], idx);
            if self.slots[bucket].is_empty() {
                let ops = self.occupancy.clear(bucket);
                self.counters.charge_bitmap(ops);
            }
        }
        self.counters.stops += 1;
        self.counters.vax_instructions += self.cost.delete;
        Ok(self.arena.free(idx))
    }

    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let idx = self.arena.resolve(handle)?;
        // All validation passed — from here the restart cannot fail. Unlink
        // from the current side (wheel slot or far list); the node never
        // touches the free list, so the client's handle (and its
        // generation) stay valid.
        let bucket = self.arena.node(idx).bucket;
        if bucket == FAR_BUCKET {
            self.arena.unlink(&mut self.far, idx);
        } else {
            self.arena.unlink(&mut self.slots[bucket], idx);
            if self.slots[bucket].is_empty() {
                let ops = self.occupancy.clear(bucket);
                self.counters.charge_bitmap(ops);
            }
        }
        self.arena.node_mut(idx).deadline = deadline;
        if interval <= self.wheel_range() {
            self.enqueue_wheel(idx);
        } else {
            self.insert_far(idx, deadline);
        }
        self.counters.restarts += 1;
        // Modeled as one §7 delete followed by one insert (plus any
        // sorted-walk steps `insert_far` charged), matching the
        // unlink+relink the update actually performs.
        self.counters.vax_instructions += self.cost.delete + self.cost.insert;
        Ok(())
    }

    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>)) {
        self.cursor = (self.cursor + 1) % self.slots.len();
        self.now = self.now.next();
        self.counters.ticks += 1;
        self.counters.vax_instructions += self.cost.skip_empty;
        if self.slots[self.cursor].is_empty() {
            self.counters.empty_slot_skips += 1;
        } else {
            self.counters.nonempty_slot_visits += 1;
            // tw-analyze: fact(loop_bounded, reason = "pops one expired timer per iteration from the flushed slot; the pop sits in a block the head-scan cannot see")
            while let Some(idx) = {
                let slot = &mut self.slots[self.cursor];
                self.arena.pop_front(slot)
            } {
                let handle = self.arena.handle_of(idx);
                let deadline = self.arena.node(idx).deadline;
                debug_assert_eq!(deadline, self.now, "hybrid wheel slot invariant violated");
                let payload = self.arena.free(idx);
                self.counters.expiries += 1;
                self.counters.vax_instructions += self.cost.expire;
                expired(Expired {
                    handle,
                    payload,
                    deadline,
                    fired_at: self.now,
                });
            }
            // The flush emptied the slot.
            let ops = self.occupancy.clear(self.cursor);
            self.counters.charge_bitmap(ops);
        }
        // One head compare per tick: migrate far timers whose deadline has
        // come within a revolution. Sorted order means at most a prefix
        // moves, and the common case is one compare and done.
        let range = self.wheel_range();
        // tw-analyze: fact(loop_bounded, reason = "migrates the due prefix of the sorted far list: the loop exits at the first head beyond one revolution after one O(1) compare; iterations = migrations + 1")
        while let Some(head) = self.far.first() {
            self.counters.decrements += 1;
            self.counters.vax_instructions += self.cost.decrement_step;
            let deadline = self.arena.node(head).deadline;
            let remaining = deadline.since(self.now);
            debug_assert!(!remaining.is_zero(), "far timer already due");
            if remaining > range {
                break;
            }
            self.arena.unlink(&mut self.far, head);
            self.enqueue_wheel(head);
            self.counters.migrations += 1;
            self.counters.vax_instructions += self.cost.insert;
        }
    }

    #[cfg(feature = "bitmap-cursor")]
    fn advance_to_with(&mut self, deadline: Tick, expired: &mut dyn FnMut(Expired<T>)) {
        let range = ticks_of(self.slots.len());
        // tw-analyze: fact(loop_bounded, reason = "each iteration either visits an occupied slot, migrates the due far-list head, or jumps a whole empty stretch via the occupancy bitmap; iterations are bounded by real work events, not elapsed ticks")
        while self.now < deadline {
            let remaining = deadline.since(self.now).as_u64();
            // Next tick with real work: an occupied wheel slot, or the far
            // head entering the wheel's one-revolution window (the per-tick
            // mode migrates it at exactly `head.deadline - range`, and the
            // far-list invariant keeps that strictly in the future).
            let probe = self.occupancy.next_occupied_delta(self.cursor);
            self.counters.charge_bitmap(1);
            let mut event = probe.unwrap_or(u64::MAX);
            if let Some(head) = self.far.first() {
                let migrate_in =
                    self.arena.node(head).deadline.as_u64() - self.now.as_u64() - range;
                event = event.min(migrate_in);
            }
            if event > remaining {
                self.skip_empty_ticks(remaining);
                return;
            }
            self.skip_empty_ticks(event - 1);
            self.tick(expired);
        }
    }

    fn now(&self) -> Tick {
        self.now
    }

    fn outstanding(&self) -> usize {
        self.arena.len()
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        self.arena.set_capacity_limit(limit);
        true
    }

    fn name(&self) -> &'static str {
        "hybrid(wheel+list)"
    }
}

impl<T> crate::validate::InvariantCheck for HybridWheel<T> {
    /// Hybrid invariants: cursor phase, wheel residents due within one
    /// revolution at the slot the cursor will visit exactly at their
    /// deadline, far-list residents sorted ascending and strictly beyond
    /// the wheel's range, and the two sides accounting for every node.
    fn check_invariants(&self) -> Result<(), crate::validate::InvariantViolation> {
        use crate::validate::{ticks_until_visit, InvariantViolation};
        let scheme = self.name();
        let fail = |detail: alloc::string::String| Err(InvariantViolation::new(scheme, detail));
        let n = ticks_of(self.slots.len());
        let now = self.now.as_u64();
        if let Err(detail) = self.arena.check_storage() {
            return fail(detail);
        }
        if self.cursor != self.now.slot_in(self.slots.len()) {
            return fail(alloc::format!(
                "cursor {} out of phase with now {now} (mod {n})",
                self.cursor
            ));
        }
        let mut linked = 0usize;
        for (slot, list) in self.slots.iter().enumerate() {
            let nodes = match self.arena.check_list(list) {
                Ok(nodes) => nodes,
                Err(detail) => return fail(alloc::format!("slot {slot}: {detail}")),
            };
            if !self.occupancy.agrees_with(slot, !nodes.is_empty()) {
                return fail(alloc::format!(
                    "occupancy bitmap disagrees with slot {slot} (list len {} \
                     so expected occupied={})",
                    nodes.len(),
                    !nodes.is_empty()
                ));
            }
            linked += nodes.len();
            for idx in nodes {
                let node = self.arena.node(idx);
                if node.bucket != slot {
                    return fail(alloc::format!(
                        "node in slot {slot} tagged bucket {}",
                        node.bucket
                    ));
                }
                let deadline = node.deadline.as_u64();
                if deadline != now + ticks_until_visit(now, ticks_of(slot), n) {
                    return fail(alloc::format!(
                        "wheel resident in slot {slot} has deadline {deadline} \
                         but the cursor reaches that slot at \
                         {}",
                        now + ticks_until_visit(now, ticks_of(slot), n)
                    ));
                }
            }
        }
        let far = match self.arena.check_list(&self.far) {
            Ok(nodes) => nodes,
            Err(detail) => return fail(alloc::format!("far list: {detail}")),
        };
        linked += far.len();
        let mut prev_deadline = 0u64;
        for idx in far {
            let node = self.arena.node(idx);
            if node.bucket != FAR_BUCKET {
                return fail(alloc::format!(
                    "far-list node tagged bucket {} instead of the sentinel",
                    node.bucket
                ));
            }
            let deadline = node.deadline.as_u64();
            if deadline <= now + n {
                return fail(alloc::format!(
                    "far-list deadline {deadline} is within the wheel's \
                     range (now {now}, {n} slots) and should have migrated"
                ));
            }
            if deadline < prev_deadline {
                return fail(alloc::format!(
                    "far list out of order: {deadline} after {prev_deadline}"
                ));
            }
            prev_deadline = deadline;
        }
        if linked != self.arena.len() {
            return fail(alloc::format!(
                "{linked} nodes on lists but {} outstanding",
                self.arena.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::TimerSchemeExt;

    #[test]
    fn near_and_far_fire_exactly() {
        let mut w: HybridWheel<u64> = HybridWheel::new(8);
        for &j in &[1u64, 8, 9, 64, 100, 1_000] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        assert_eq!(w.far_len(), 4); // 9, 64, 100, 1000 exceed the 8-slot range
        let fired = w.collect_ticks(1_000);
        let got: Vec<(u64, u64)> = fired
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        assert_eq!(
            got,
            vec![(1, 1), (8, 8), (9, 9), (64, 64), (100, 100), (1_000, 1_000)]
        );
    }

    #[test]
    fn boundary_interval_goes_to_wheel() {
        let mut w: HybridWheel<()> = HybridWheel::new(16);
        w.start_timer(TickDelta(16), ()).unwrap();
        assert_eq!(w.far_len(), 0);
        w.start_timer(TickDelta(17), ()).unwrap();
        assert_eq!(w.far_len(), 1);
    }

    #[test]
    fn far_list_stays_sorted_and_migrates_in_order() {
        let mut w: HybridWheel<u64> = HybridWheel::new(4);
        for &j in &[50u64, 20, 80, 35] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(80);
        let got: Vec<u64> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![20, 35, 50, 80]);
        for e in &fired {
            assert_eq!(e.error(), 0);
        }
    }

    #[test]
    fn per_tick_cost_is_one_head_compare_when_idle() {
        let mut w: HybridWheel<()> = HybridWheel::new(8);
        for k in 1..=50u64 {
            w.start_timer(TickDelta(10_000 + k), ()).unwrap();
        }
        w.reset_counters();
        w.run_ticks(100);
        // One far-head compare per tick, never a scan.
        assert_eq!(w.counters().decrements, 100);
        assert_eq!(w.counters().migrations, 0);
    }

    #[cfg(feature = "bitmap-cursor")]
    #[test]
    fn bitmap_advance_migrates_far_head_on_time() {
        use crate::scheme::TimerScheme;
        let mut w: HybridWheel<u64> = HybridWheel::new(64);
        for &j in &[30u64, 500, 505, 4_000] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        w.reset_counters();
        let mut fired = Vec::new();
        w.advance_to_with(Tick(4_000), &mut |e| {
            assert_eq!(e.fired_at, e.deadline);
            fired.push(e.payload);
        });
        assert_eq!(fired, vec![30, 500, 505, 4_000]);
        assert_eq!(w.now(), Tick(4_000));
        assert_eq!(w.outstanding(), 0);
        let c = w.counters();
        assert_eq!(c.ticks, 4_000);
        assert_eq!(c.migrations, 3);
        // Head compares happen only at real ticks, not 4000 times.
        assert!(c.decrements < 20, "got {} head compares", c.decrements);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn stop_from_both_sides() {
        let mut w: HybridWheel<u64> = HybridWheel::new(8);
        let near = w.start_timer(TickDelta(3), 3).unwrap();
        let far = w.start_timer(TickDelta(300), 300).unwrap();
        assert_eq!(w.stop_timer(far), Ok(300));
        assert_eq!(w.stop_timer(near), Ok(3));
        assert!(w.collect_ticks(400).is_empty());
        assert_eq!(w.stop_timer(near), Err(TimerError::Stale));
    }

    #[test]
    fn zero_interval_rejected() {
        let mut w: HybridWheel<()> = HybridWheel::new(8);
        assert_eq!(
            w.start_timer(TickDelta::ZERO, ()),
            Err(TimerError::ZeroInterval)
        );
    }

    #[test]
    fn restart_rearms_to_a_new_deadline_with_the_same_handle() {
        let mut w: HybridWheel<&str> = HybridWheel::new(8);
        let h = w.start_timer(TickDelta(3), "x").unwrap();
        w.restart_timer(h, TickDelta(6)).unwrap();
        assert!(w.collect_ticks(3).is_empty());
        let fired = w.collect_ticks(3);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(6));
        assert_eq!(fired[0].handle, h);
        assert_eq!(w.counters().restarts, 1);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn restart_moves_between_wheel_and_far_list() {
        let mut w: HybridWheel<u32> = HybridWheel::new(8);
        // Keep the far list non-trivial so the sorted re-insert is real.
        w.start_timer(TickDelta(40), 40).unwrap();
        w.start_timer(TickDelta(90), 90).unwrap();
        let h = w.start_timer(TickDelta(2), 7).unwrap();
        // Wheel → far list, landing between the two residents.
        w.restart_timer(h, TickDelta(60)).unwrap();
        assert_eq!(w.far_len(), 3);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        // Far list → back onto the wheel.
        w.restart_timer(h, TickDelta(5)).unwrap();
        assert_eq!(w.far_len(), 2);
        let fired = w.collect_ticks(5);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(5));
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn failed_restart_leaves_the_timer_armed() {
        let mut w: HybridWheel<()> = HybridWheel::new(8);
        let h = w.start_timer(TickDelta(4), ()).unwrap();
        assert_eq!(
            w.restart_timer(h, TickDelta::ZERO),
            Err(TimerError::ZeroInterval)
        );
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        let fired = w.collect_ticks(4);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(4));
        assert_eq!(w.restart_timer(h, TickDelta(1)), Err(TimerError::Stale));
    }
}
