//! Configuration knobs shared by the wheel schemes.

use alloc::vec;
use alloc::vec::Vec;

use crate::observe::{NoopObserver, Observed, Observer};
use crate::time::TickDelta;
use crate::wheel::hierarchical::InsertRule;
use crate::TimerError;

/// What a bounded-range wheel does with an interval beyond its range.
///
/// §5 notes that memory is finite ("it is difficult to justify 2³² words of
/// memory to implement 32 bit timers") and sketches the options implemented
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Fail `start_timer` with [`TimerError::IntervalOutOfRange`].
    #[default]
    Reject,
    /// Park the timer on a single unsorted overflow list (the Figure 7 logic
    /// simulation approach); it is re-examined each time the wheel's cursor
    /// completes a revolution and admitted once in range.
    OverflowList,
    /// Clamp the interval to the wheel's maximum (the timer fires early; the
    /// client is expected to re-arm — a common kernel tactic).
    Cap,
}

impl OverflowPolicy {
    /// Applies the policy to an out-of-range interval.
    ///
    /// Returns `Ok(Some(clamped))` for `Cap`, `Ok(None)` for `OverflowList`
    /// (caller parks the timer) and `Err` for `Reject`.
    pub fn apply(self, max: TickDelta) -> Result<Option<TickDelta>, TimerError> {
        match self {
            OverflowPolicy::Reject => Err(TimerError::IntervalOutOfRange { max }),
            OverflowPolicy::OverflowList => Ok(None),
            OverflowPolicy::Cap => Ok(Some(max)),
        }
    }
}

/// How a hierarchical wheel (Scheme 7) moves timers between levels (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationPolicy {
    /// Migrate a timer down one level each time its slot is reached, until it
    /// fires from the finest level at its exact deadline (the scheme as
    /// described in the body of §6.2).
    #[default]
    Full,
    /// Never migrate: fire the timer the first time its insertion-level slot
    /// is reached (Wick Nichols' variant). Trades precision — up to one slot
    /// of the insertion level, i.e. up to 50% of the interval rounded — for
    /// strictly less `PER_TICK_BOOKKEEPING` work.
    None,
    /// Migrate at most once, to the adjacent finer level, then fire (the
    /// "improve the precision by allowing just one migration" variant).
    Single,
}

/// Number of slots per level for a hierarchical wheel, finest level first.
///
/// The granularity of level `i` is the product of the sizes of all finer
/// levels (level 0 has granularity 1 tick). The paper's §6.2 example —
/// seconds/minutes/hours/days — is [`LevelSizes::clock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSizes(pub Vec<u64>);

impl LevelSizes {
    /// The paper's worked example: 60 seconds, 60 minutes, 24 hours,
    /// 100 days — 244 slots spanning 8.64 million ticks.
    #[must_use]
    pub fn clock() -> LevelSizes {
        LevelSizes(vec![60, 60, 24, 100])
    }

    /// Four levels of 256 slots — 1024 slots spanning 2³² ticks, the "32 bit
    /// timer" sizing of §6.2 with power-of-two radices (cheap AND indexing).
    #[must_use]
    pub fn pow2_32bit() -> LevelSizes {
        LevelSizes(vec![256, 256, 256, 256])
    }

    /// Total number of slots across all levels (the paper's "244 locations"
    /// comparison).
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Total range in ticks (product of level sizes), saturating at
    /// `u64::MAX`.
    #[must_use]
    pub fn range(&self) -> u64 {
        self.0
            .iter()
            .try_fold(1u64, |acc, &n| acc.checked_mul(n))
            .unwrap_or(u64::MAX)
    }

    /// Validates the configuration: at least one level, every size ≥ 2,
    /// at most 16 levels.
    ///
    /// # Errors
    ///
    /// [`TimerError::InvalidConfig`] naming the violated constraint. This
    /// is the [`WheelConfig`] validation path; the panicking
    /// [`validate`](LevelSizes::validate) wraps it for the legacy
    /// constructors.
    pub fn try_validate(&self) -> Result<(), TimerError> {
        if self.0.is_empty() {
            return Err(TimerError::InvalidConfig {
                reason: "hierarchy needs at least one level",
            });
        }
        if !self.0.iter().all(|&n| n >= 2) {
            return Err(TimerError::InvalidConfig {
                reason: "every level needs at least 2 slots",
            });
        }
        if self.0.len() > 16 {
            return Err(TimerError::InvalidConfig {
                reason: "more than 16 levels is never useful (2^16 range per 2-slot level)",
            });
        }
        Ok(())
    }

    /// Panicking form of [`try_validate`](LevelSizes::try_validate).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (construction-time misuse).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// One builder for every wheel scheme, replacing the per-wheel ad-hoc
/// constructors (and their panics) with validated construction.
///
/// Set the knobs that apply to the scheme you build — `slots` for the flat
/// wheels (Schemes 4–6 and the hybrid), `granularities` for the
/// hierarchies (Scheme 7 and the clockwork variant) — then call the
/// `build_*` method for the scheme, or `TryFrom` for an unobserved wheel.
/// Knobs a scheme has no use for are ignored (a hashed wheel has unbounded
/// range, so `max_interval`/`overflow` never trigger there); invalid knobs
/// return [`TimerError::InvalidConfig`] instead of panicking.
///
/// An [`Observer`] can be attached with [`observer`](WheelConfig::observer);
/// the `build_*` methods then return the wheel wrapped in
/// [`Observed`]. The default [`NoopObserver`] compiles the hooks away.
///
/// # Examples
///
/// ```
/// use tw_core::wheel::{HierarchicalWheel, LevelSizes, MigrationPolicy, WheelConfig};
/// use tw_core::{TickDelta, TimerError};
///
/// // Validated: an empty hierarchy is an error, not a panic.
/// let bad = WheelConfig::new().granularities(LevelSizes(vec![]));
/// assert!(matches!(
///     HierarchicalWheel::<u32>::try_from(bad),
///     Err(TimerError::InvalidConfig { .. })
/// ));
///
/// let mut wheel = WheelConfig::new()
///     .granularities(LevelSizes::clock())
///     .migration(MigrationPolicy::Full)
///     .build_hierarchical::<&str>()
///     .unwrap();
/// use tw_core::{TimerScheme, TimerSchemeExt};
/// wheel.start_timer(TickDelta(90), "level 1").unwrap();
/// assert_eq!(wheel.collect_ticks(90).len(), 1);
/// ```
#[derive(Clone)]
pub struct WheelConfig<O: Observer = NoopObserver> {
    slots: Option<usize>,
    granularities: Option<LevelSizes>,
    max_interval: Option<TickDelta>,
    overflow: OverflowPolicy,
    migration: MigrationPolicy,
    insert_rule: InsertRule,
    observer: O,
}

impl WheelConfig<NoopObserver> {
    /// An empty configuration with default policies and no observer.
    #[must_use]
    pub fn new() -> WheelConfig<NoopObserver> {
        WheelConfig {
            slots: None,
            granularities: None,
            max_interval: None,
            overflow: OverflowPolicy::default(),
            migration: MigrationPolicy::default(),
            insert_rule: InsertRule::default(),
            observer: NoopObserver,
        }
    }
}

impl Default for WheelConfig<NoopObserver> {
    fn default() -> Self {
        WheelConfig::new()
    }
}

impl<O: Observer> WheelConfig<O> {
    /// Slot count for the flat wheels: Scheme 4's `MaxInterval` array, the
    /// hashed wheels' table size, the hybrid's near window.
    #[must_use]
    pub fn slots(mut self, slots: usize) -> Self {
        self.slots = Some(slots);
        self
    }

    /// Level sizes (finest first) for the hierarchical schemes.
    #[must_use]
    pub fn granularities(mut self, sizes: LevelSizes) -> Self {
        self.granularities = Some(sizes);
        self
    }

    /// The largest interval the client will ever submit. For bounded-range
    /// schemes under [`OverflowPolicy::Reject`], building fails unless the
    /// wheel's range covers it; for a basic wheel with no explicit `slots`,
    /// it also sizes the slot array.
    #[must_use]
    pub fn max_interval(mut self, max: TickDelta) -> Self {
        self.max_interval = Some(max);
        self
    }

    /// Out-of-range handling for the bounded-range schemes.
    #[must_use]
    pub fn overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Level-migration policy for the hierarchical wheel (§6.2).
    #[must_use]
    pub fn migration(mut self, policy: MigrationPolicy) -> Self {
        self.migration = policy;
        self
    }

    /// Insertion-level rule for the hierarchical wheel.
    #[must_use]
    pub fn insert_rule(mut self, rule: InsertRule) -> Self {
        self.insert_rule = rule;
        self
    }

    /// Attaches an observer; the `build_*` methods will wrap the wheel in
    /// [`Observed`] reporting to it.
    #[must_use]
    pub fn observer<O2: Observer>(self, observer: O2) -> WheelConfig<O2> {
        WheelConfig {
            slots: self.slots,
            granularities: self.granularities,
            max_interval: self.max_interval,
            overflow: self.overflow,
            migration: self.migration,
            insert_rule: self.insert_rule,
            observer,
        }
    }

    /// Flat-wheel slot count: `slots`, or `max_interval` for the basic
    /// wheel (whose slot array *is* its range).
    fn flat_slots(&self, missing: &'static str) -> Result<usize, TimerError> {
        let n = match (self.slots, self.max_interval) {
            (Some(n), _) => n,
            (None, Some(max)) => {
                usize::try_from(max.as_u64()).map_err(|_| TimerError::InvalidConfig {
                    reason: "max_interval exceeds the address space",
                })?
            }
            (None, None) => return Err(TimerError::InvalidConfig { reason: missing }),
        };
        if n == 0 {
            return Err(TimerError::InvalidConfig {
                reason: "wheel needs at least one slot",
            });
        }
        Ok(n)
    }

    /// Checks a bounded range against the requested `max_interval` under
    /// the `Reject` policy (the other policies absorb out-of-range starts).
    fn check_range(&self, range: TickDelta) -> Result<(), TimerError> {
        if self.overflow == OverflowPolicy::Reject {
            if let Some(max) = self.max_interval {
                if max > range {
                    return Err(TimerError::InvalidConfig {
                        reason:
                            "max_interval exceeds the scheme's range under OverflowPolicy::Reject",
                    });
                }
            }
        }
        Ok(())
    }

    fn make_basic<T>(&self) -> Result<super::BasicWheel<T>, TimerError> {
        let n = self.flat_slots("a basic wheel needs `slots` or `max_interval`")?;
        let wheel = super::BasicWheel::build(n, self.overflow);
        self.check_range(wheel.max_interval())?;
        Ok(wheel)
    }

    fn make_hashed_sorted<T>(&self) -> Result<super::HashedWheelSorted<T>, TimerError> {
        let n = self.flat_slots("a hashed wheel needs `slots` (its table size)")?;
        Ok(super::HashedWheelSorted::new(n))
    }

    fn make_hashed_unsorted<T>(&self) -> Result<super::HashedWheelUnsorted<T>, TimerError> {
        let n = self.flat_slots("a hashed wheel needs `slots` (its table size)")?;
        Ok(super::HashedWheelUnsorted::new(n))
    }

    fn make_hybrid<T>(&self) -> Result<super::HybridWheel<T>, TimerError> {
        let n = self.flat_slots("a hybrid wheel needs `slots` (its near window)")?;
        Ok(super::HybridWheel::new(n))
    }

    fn make_hierarchical<T>(&self) -> Result<super::HierarchicalWheel<T>, TimerError> {
        let sizes = self
            .granularities
            .clone()
            .ok_or(TimerError::InvalidConfig {
                reason: "a hierarchical wheel needs `granularities`",
            })?;
        sizes.try_validate()?;
        let wheel =
            super::HierarchicalWheel::build(sizes, self.insert_rule, self.migration, self.overflow);
        self.check_range(wheel.max_interval())?;
        Ok(wheel)
    }

    fn make_lawn<T>(&self) -> Result<super::LawnWheel<T>, TimerError> {
        // One bucket per representable TTL: `max_interval` is the natural
        // knob (the lawn has no hash table, so `slots` means nothing here).
        let max = self.max_interval.ok_or(TimerError::InvalidConfig {
            reason: "a lawn needs `max_interval` (one bucket per distinct TTL)",
        })?;
        let n = usize::try_from(max.as_u64()).map_err(|_| TimerError::InvalidConfig {
            reason: "max_interval exceeds the address space",
        })?;
        if n == 0 {
            return Err(TimerError::InvalidConfig {
                reason: "wheel needs at least one slot",
            });
        }
        if self.overflow == OverflowPolicy::OverflowList {
            return Err(TimerError::InvalidConfig {
                reason: "the lawn has no overflow list; use Reject or Cap",
            });
        }
        Ok(super::LawnWheel::build(n, self.overflow))
    }

    fn make_clockwork<T>(&self) -> Result<super::ClockworkWheel<T>, TimerError> {
        let sizes = self
            .granularities
            .clone()
            .ok_or(TimerError::InvalidConfig {
                reason: "a clockwork wheel needs `granularities`",
            })?;
        sizes.try_validate()?;
        self.check_range(TickDelta(sizes.range().saturating_sub(1)))?;
        Ok(super::ClockworkWheel::new(sizes))
    }

    /// Builds Scheme 4 (basic wheel) under this configuration.
    ///
    /// # Errors
    ///
    /// [`TimerError::InvalidConfig`] when neither `slots` nor
    /// `max_interval` is set, the slot count is zero, or `max_interval`
    /// exceeds the one-revolution range under `Reject`.
    pub fn build_basic<T>(self) -> Result<Observed<super::BasicWheel<T>, O>, TimerError> {
        let wheel = self.make_basic()?;
        Ok(Observed::new(wheel, self.observer))
    }

    /// Builds Scheme 5 (hashed wheel, sorted buckets).
    ///
    /// # Errors
    ///
    /// [`TimerError::InvalidConfig`] when `slots` is missing or zero.
    pub fn build_hashed_sorted<T>(
        self,
    ) -> Result<Observed<super::HashedWheelSorted<T>, O>, TimerError> {
        let wheel = self.make_hashed_sorted()?;
        Ok(Observed::new(wheel, self.observer))
    }

    /// Builds Scheme 6 (hashed wheel, unsorted buckets).
    ///
    /// # Errors
    ///
    /// [`TimerError::InvalidConfig`] when `slots` is missing or zero.
    pub fn build_hashed_unsorted<T>(
        self,
    ) -> Result<Observed<super::HashedWheelUnsorted<T>, O>, TimerError> {
        let wheel = self.make_hashed_unsorted()?;
        Ok(Observed::new(wheel, self.observer))
    }

    /// Builds the §5 hybrid (bounded wheel + ordered overflow list).
    ///
    /// # Errors
    ///
    /// [`TimerError::InvalidConfig`] when `slots` is missing or zero.
    pub fn build_hybrid<T>(self) -> Result<Observed<super::HybridWheel<T>, O>, TimerError> {
        let wheel = self.make_hybrid()?;
        Ok(Observed::new(wheel, self.observer))
    }

    /// Builds Scheme 7 (hierarchical wheel) under this configuration.
    ///
    /// # Errors
    ///
    /// [`TimerError::InvalidConfig`] when `granularities` is missing or
    /// invalid, or `max_interval` exceeds the hierarchy's range under
    /// `Reject`.
    pub fn build_hierarchical<T>(
        self,
    ) -> Result<Observed<super::HierarchicalWheel<T>, O>, TimerError> {
        let wheel = self.make_hierarchical()?;
        Ok(Observed::new(wheel, self.observer))
    }

    /// Builds the clockwork (literal per-level update timers) variant of
    /// Scheme 7.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build_hierarchical`](Self::build_hierarchical).
    pub fn build_clockwork<T>(self) -> Result<Observed<super::ClockworkWheel<T>, O>, TimerError> {
        let wheel = self.make_clockwork()?;
        Ok(Observed::new(wheel, self.observer))
    }

    /// Builds Scheme 8 (the Lawn: per-TTL append-ordered buckets).
    ///
    /// # Errors
    ///
    /// [`TimerError::InvalidConfig`] when `max_interval` is missing or
    /// zero, or the overflow policy is `OverflowList` (the lawn has no
    /// overflow list — use `Reject` or `Cap`).
    pub fn build_lawn<T>(self) -> Result<Observed<super::LawnWheel<T>, O>, TimerError> {
        let wheel = self.make_lawn()?;
        Ok(Observed::new(wheel, self.observer))
    }
}

impl<T> TryFrom<WheelConfig> for super::BasicWheel<T> {
    type Error = TimerError;
    fn try_from(cfg: WheelConfig) -> Result<Self, TimerError> {
        cfg.make_basic()
    }
}

impl<T> TryFrom<WheelConfig> for super::HashedWheelSorted<T> {
    type Error = TimerError;
    fn try_from(cfg: WheelConfig) -> Result<Self, TimerError> {
        cfg.make_hashed_sorted()
    }
}

impl<T> TryFrom<WheelConfig> for super::HashedWheelUnsorted<T> {
    type Error = TimerError;
    fn try_from(cfg: WheelConfig) -> Result<Self, TimerError> {
        cfg.make_hashed_unsorted()
    }
}

impl<T> TryFrom<WheelConfig> for super::HybridWheel<T> {
    type Error = TimerError;
    fn try_from(cfg: WheelConfig) -> Result<Self, TimerError> {
        cfg.make_hybrid()
    }
}

impl<T> TryFrom<WheelConfig> for super::HierarchicalWheel<T> {
    type Error = TimerError;
    fn try_from(cfg: WheelConfig) -> Result<Self, TimerError> {
        cfg.make_hierarchical()
    }
}

impl<T> TryFrom<WheelConfig> for super::ClockworkWheel<T> {
    type Error = TimerError;
    fn try_from(cfg: WheelConfig) -> Result<Self, TimerError> {
        cfg.make_clockwork()
    }
}

impl<T> TryFrom<WheelConfig> for super::LawnWheel<T> {
    type Error = TimerError;
    fn try_from(cfg: WheelConfig) -> Result<Self, TimerError> {
        cfg.make_lawn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_policy_apply() {
        let max = TickDelta(100);
        assert_eq!(
            OverflowPolicy::Reject.apply(max),
            Err(TimerError::IntervalOutOfRange { max })
        );
        assert_eq!(OverflowPolicy::OverflowList.apply(max), Ok(None));
        assert_eq!(OverflowPolicy::Cap.apply(max), Ok(Some(max)));
    }

    #[test]
    fn clock_sizes_match_paper() {
        let clock = LevelSizes::clock();
        // §6.2: "100 + 24 + 60 + 60 = 244 locations" spanning
        // "100 * 24 * 60 * 60 = 8.64 million" ticks.
        assert_eq!(clock.total_slots(), 244);
        assert_eq!(clock.range(), 8_640_000);
    }

    #[test]
    fn pow2_sizes_span_32_bits() {
        let p = LevelSizes::pow2_32bit();
        assert_eq!(p.range(), 1 << 32);
        assert_eq!(p.total_slots(), 1024);
    }

    #[test]
    fn range_saturates() {
        let huge = LevelSizes(vec![u32::MAX as u64 + 1; 3]);
        assert_eq!(huge.range(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_levels_invalid() {
        LevelSizes(vec![]).validate();
    }

    #[test]
    #[should_panic(expected = "at least 2 slots")]
    fn tiny_level_invalid() {
        LevelSizes(vec![60, 1]).validate();
    }

    #[test]
    fn try_validate_mirrors_validate_without_panicking() {
        assert!(LevelSizes::clock().try_validate().is_ok());
        assert!(matches!(
            LevelSizes(vec![]).try_validate(),
            Err(TimerError::InvalidConfig { reason }) if reason.contains("at least one level")
        ));
        assert!(matches!(
            LevelSizes(vec![60, 1]).try_validate(),
            Err(TimerError::InvalidConfig { reason }) if reason.contains("at least 2 slots")
        ));
        assert!(LevelSizes(vec![2; 17]).try_validate().is_err());
    }

    #[test]
    fn builder_constructs_every_scheme() {
        use crate::scheme::{TimerScheme, TimerSchemeExt};

        let cfg = WheelConfig::new().slots(64);
        let mut basic = cfg.clone().build_basic::<u64>().unwrap();
        let mut sorted = cfg.clone().build_hashed_sorted::<u64>().unwrap();
        let mut unsorted = cfg.clone().build_hashed_unsorted::<u64>().unwrap();
        let mut hybrid = cfg.build_hybrid::<u64>().unwrap();
        let hier_cfg = WheelConfig::new().granularities(LevelSizes(vec![16, 16]));
        let mut hier = hier_cfg.clone().build_hierarchical::<u64>().unwrap();
        let mut clock = hier_cfg.build_clockwork::<u64>().unwrap();
        for j in [1u64, 9, 33] {
            basic.start_timer(TickDelta(j), j).unwrap();
            sorted.start_timer(TickDelta(j), j).unwrap();
            unsorted.start_timer(TickDelta(j), j).unwrap();
            hybrid.start_timer(TickDelta(j), j).unwrap();
            hier.start_timer(TickDelta(j), j).unwrap();
            clock.start_timer(TickDelta(j), j).unwrap();
        }
        assert_eq!(basic.collect_ticks(64).len(), 3);
        assert_eq!(sorted.collect_ticks(64).len(), 3);
        assert_eq!(unsorted.collect_ticks(64).len(), 3);
        assert_eq!(hybrid.collect_ticks(64).len(), 3);
        assert_eq!(hier.collect_ticks(64).len(), 3);
        assert_eq!(clock.collect_ticks(64).len(), 3);
    }

    #[test]
    fn builder_rejects_invalid_knobs_instead_of_panicking() {
        assert!(matches!(
            WheelConfig::new().build_basic::<u64>(),
            Err(TimerError::InvalidConfig { .. })
        ));
        assert!(matches!(
            WheelConfig::new().slots(0).build_hashed_unsorted::<u64>(),
            Err(TimerError::InvalidConfig { .. })
        ));
        assert!(matches!(
            WheelConfig::new().slots(8).build_hierarchical::<u64>(),
            Err(TimerError::InvalidConfig { .. })
        ));
        assert!(matches!(
            WheelConfig::new()
                .granularities(LevelSizes(vec![4, 1]))
                .build_clockwork::<u64>(),
            Err(TimerError::InvalidConfig { .. })
        ));
        // Reject-policy range check: 64 slots cannot cover interval 100.
        assert!(matches!(
            WheelConfig::new()
                .slots(64)
                .max_interval(TickDelta(100))
                .build_basic::<u64>(),
            Err(TimerError::InvalidConfig { .. })
        ));
        // The same request under OverflowList is fine: far timers park.
        assert!(WheelConfig::new()
            .slots(64)
            .max_interval(TickDelta(100))
            .overflow(OverflowPolicy::OverflowList)
            .build_basic::<u64>()
            .is_ok());
        // A basic wheel sized by max_interval alone.
        let w = WheelConfig::new()
            .max_interval(TickDelta(128))
            .build_basic::<u64>()
            .unwrap();
        assert_eq!(w.get().max_interval(), TickDelta(128));
    }

    #[test]
    fn try_from_yields_bare_validated_wheels() {
        use crate::scheme::TimerScheme;
        use crate::wheel::{BasicWheel, ClockworkWheel, HierarchicalWheel};

        let mut w = BasicWheel::<u64>::try_from(WheelConfig::new().slots(8)).unwrap();
        w.start_timer(TickDelta(2), 7).unwrap();
        assert_eq!(w.outstanding(), 1);
        assert!(BasicWheel::<u64>::try_from(WheelConfig::new()).is_err());
        assert!(HierarchicalWheel::<u64>::try_from(
            WheelConfig::new().granularities(LevelSizes::clock())
        )
        .is_ok());
        assert!(ClockworkWheel::<u64>::try_from(WheelConfig::new()).is_err());
    }

    #[test]
    fn builder_observer_wraps_the_wheel() {
        use crate::observe::Observer;
        use crate::scheme::{TimerScheme, TimerSchemeExt};
        use crate::time::Tick;
        use core::cell::Cell;

        #[derive(Default)]
        struct Counts {
            fires: Cell<u64>,
        }
        impl Observer for Counts {
            fn on_fire(&self, _deadline: Tick, _fired_at: Tick) {
                self.fires.set(self.fires.get() + 1);
            }
        }
        let counts = Counts::default();
        let mut w = WheelConfig::new()
            .slots(32)
            .observer(&counts)
            .build_basic::<u64>()
            .unwrap();
        w.start_timer(TickDelta(5), 5).unwrap();
        w.start_timer(TickDelta(9), 9).unwrap();
        assert_eq!(w.collect_ticks(10).len(), 2);
        assert_eq!(counts.fires.get(), 2);
    }
}
