//! Configuration knobs shared by the wheel schemes.

use alloc::vec;
use alloc::vec::Vec;

use crate::time::TickDelta;
use crate::TimerError;

/// What a bounded-range wheel does with an interval beyond its range.
///
/// §5 notes that memory is finite ("it is difficult to justify 2³² words of
/// memory to implement 32 bit timers") and sketches the options implemented
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Fail `start_timer` with [`TimerError::IntervalOutOfRange`].
    #[default]
    Reject,
    /// Park the timer on a single unsorted overflow list (the Figure 7 logic
    /// simulation approach); it is re-examined each time the wheel's cursor
    /// completes a revolution and admitted once in range.
    OverflowList,
    /// Clamp the interval to the wheel's maximum (the timer fires early; the
    /// client is expected to re-arm — a common kernel tactic).
    Cap,
}

impl OverflowPolicy {
    /// Applies the policy to an out-of-range interval.
    ///
    /// Returns `Ok(Some(clamped))` for `Cap`, `Ok(None)` for `OverflowList`
    /// (caller parks the timer) and `Err` for `Reject`.
    pub fn apply(self, max: TickDelta) -> Result<Option<TickDelta>, TimerError> {
        match self {
            OverflowPolicy::Reject => Err(TimerError::IntervalOutOfRange { max }),
            OverflowPolicy::OverflowList => Ok(None),
            OverflowPolicy::Cap => Ok(Some(max)),
        }
    }
}

/// How a hierarchical wheel (Scheme 7) moves timers between levels (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationPolicy {
    /// Migrate a timer down one level each time its slot is reached, until it
    /// fires from the finest level at its exact deadline (the scheme as
    /// described in the body of §6.2).
    #[default]
    Full,
    /// Never migrate: fire the timer the first time its insertion-level slot
    /// is reached (Wick Nichols' variant). Trades precision — up to one slot
    /// of the insertion level, i.e. up to 50% of the interval rounded — for
    /// strictly less `PER_TICK_BOOKKEEPING` work.
    None,
    /// Migrate at most once, to the adjacent finer level, then fire (the
    /// "improve the precision by allowing just one migration" variant).
    Single,
}

/// Number of slots per level for a hierarchical wheel, finest level first.
///
/// The granularity of level `i` is the product of the sizes of all finer
/// levels (level 0 has granularity 1 tick). The paper's §6.2 example —
/// seconds/minutes/hours/days — is [`LevelSizes::clock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSizes(pub Vec<u64>);

impl LevelSizes {
    /// The paper's worked example: 60 seconds, 60 minutes, 24 hours,
    /// 100 days — 244 slots spanning 8.64 million ticks.
    #[must_use]
    pub fn clock() -> LevelSizes {
        LevelSizes(vec![60, 60, 24, 100])
    }

    /// Four levels of 256 slots — 1024 slots spanning 2³² ticks, the "32 bit
    /// timer" sizing of §6.2 with power-of-two radices (cheap AND indexing).
    #[must_use]
    pub fn pow2_32bit() -> LevelSizes {
        LevelSizes(vec![256, 256, 256, 256])
    }

    /// Total number of slots across all levels (the paper's "244 locations"
    /// comparison).
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Total range in ticks (product of level sizes), saturating at
    /// `u64::MAX`.
    #[must_use]
    pub fn range(&self) -> u64 {
        self.0
            .iter()
            .try_fold(1u64, |acc, &n| acc.checked_mul(n))
            .unwrap_or(u64::MAX)
    }

    /// Validates the configuration: at least one level, every size ≥ 2.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (construction-time misuse).
    pub fn validate(&self) {
        assert!(!self.0.is_empty(), "hierarchy needs at least one level");
        assert!(
            self.0.iter().all(|&n| n >= 2),
            "every level needs at least 2 slots"
        );
        assert!(
            self.0.len() <= 16,
            "more than 16 levels is never useful (2^16 range per 2-slot level)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_policy_apply() {
        let max = TickDelta(100);
        assert_eq!(
            OverflowPolicy::Reject.apply(max),
            Err(TimerError::IntervalOutOfRange { max })
        );
        assert_eq!(OverflowPolicy::OverflowList.apply(max), Ok(None));
        assert_eq!(OverflowPolicy::Cap.apply(max), Ok(Some(max)));
    }

    #[test]
    fn clock_sizes_match_paper() {
        let clock = LevelSizes::clock();
        // §6.2: "100 + 24 + 60 + 60 = 244 locations" spanning
        // "100 * 24 * 60 * 60 = 8.64 million" ticks.
        assert_eq!(clock.total_slots(), 244);
        assert_eq!(clock.range(), 8_640_000);
    }

    #[test]
    fn pow2_sizes_span_32_bits() {
        let p = LevelSizes::pow2_32bit();
        assert_eq!(p.range(), 1 << 32);
        assert_eq!(p.total_slots(), 1024);
    }

    #[test]
    fn range_saturates() {
        let huge = LevelSizes(vec![u32::MAX as u64 + 1; 3]);
        assert_eq!(huge.range(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_levels_invalid() {
        LevelSizes(vec![]).validate();
    }

    #[test]
    #[should_panic(expected = "at least 2 slots")]
    fn tiny_level_invalid() {
        LevelSizes(vec![60, 1]).validate();
    }
}
