//! Scheme 4 — the basic timing wheel for bounded intervals (§5, Figure 8).
//!
//! A circular buffer of `MaxInterval` slots, each holding a doubly-linked
//! list of timers. The wheel "turns one array element every timer unit" —
//! unlike the conventional logic-simulation wheel that rotates once per
//! cycle — which guarantees every timer within `MaxInterval` of the current
//! time sits in the array, giving O(1) `START_TIMER`, `STOP_TIMER`, and
//! `PER_TICK_BOOKKEEPING`.
//!
//! Setting a timer `j` units into the future indexes element
//! `(current + j) mod MaxInterval` (Figure 8). With the tick defined as
//! *advance the cursor, then flush the slot it lands on*, every interval
//! `1 ≤ j ≤ MaxInterval` is representable; intervals beyond that are handled
//! per the configured [`OverflowPolicy`].

use alloc::vec::Vec;

use crate::arena::{ListHead, TimerArena};
use crate::bitmap::SlotBitmap;
use crate::counters::{OpCounters, VaxCostModel};
use crate::handle::TimerHandle;
use crate::scheme::{Expired, TimerScheme};
use crate::time::{ticks_of, Tick, TickDelta};
use crate::wheel::config::OverflowPolicy;
use crate::TimerError;

/// Bucket tag for timers parked on the overflow list.
const OVERFLOW_BUCKET: usize = usize::MAX;

/// Scheme 4: a per-tick-rotating timing wheel. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use tw_core::wheel::BasicWheel;
/// use tw_core::{TickDelta, TimerScheme, TimerSchemeExt};
///
/// let mut wheel: BasicWheel<&str> = BasicWheel::new(128);
/// wheel.start_timer(TickDelta(3), "retransmit").unwrap();
/// let fired = wheel.collect_ticks(3);
/// assert_eq!(fired.len(), 1);
/// assert_eq!(fired[0].payload, "retransmit");
/// ```
pub struct BasicWheel<T> {
    slots: Vec<ListHead>,
    /// Slot index corresponding to the current time.
    cursor: usize,
    now: Tick,
    arena: TimerArena<T>,
    overflow: ListHead,
    overflow_policy: OverflowPolicy,
    /// Two-tier slot-occupancy bitmap (zero-sized no-op without the
    /// `bitmap-cursor` feature); bit set ⇔ slot list non-empty.
    occupancy: SlotBitmap,
    counters: OpCounters,
    cost: VaxCostModel,
}

impl<T> BasicWheel<T> {
    /// Creates a wheel accepting intervals up to `max_interval` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `max_interval` is zero.
    #[must_use]
    pub fn new(max_interval: usize) -> BasicWheel<T> {
        BasicWheel::build(max_interval, OverflowPolicy::default())
    }

    /// Shared constructor behind `new` and the validated
    /// [`WheelConfig`](crate::wheel::WheelConfig) path
    /// (which checks `max_interval > 0` before calling).
    pub(crate) fn build(max_interval: usize, overflow_policy: OverflowPolicy) -> BasicWheel<T> {
        assert!(max_interval > 0, "wheel needs at least one slot");
        BasicWheel {
            slots: (0..max_interval).map(|_| ListHead::new()).collect(),
            cursor: 0,
            now: Tick::ZERO,
            arena: TimerArena::new(),
            overflow: ListHead::new(),
            overflow_policy,
            occupancy: SlotBitmap::new(max_interval),
            counters: OpCounters::new(),
            cost: VaxCostModel::PAPER,
        }
    }

    /// The largest interval the wheel accepts directly.
    #[must_use]
    pub fn max_interval(&self) -> TickDelta {
        TickDelta::table_span(self.slots.len())
    }

    /// Number of timers currently parked on the overflow list.
    #[must_use]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Links an already-allocated node into the slot its deadline hashes to:
    /// Figure 8's `(current + j) mod MaxInterval` equals `deadline mod
    /// MaxInterval` because the cursor is congruent to the clock.
    fn enqueue(&mut self, idx: crate::arena::NodeIdx) {
        let deadline = self.arena.node(idx).deadline;
        debug_assert!(
            deadline > self.now && deadline.since(self.now) <= self.max_interval(),
            "enqueue outside the wheel's one-revolution window"
        );
        let slot = deadline.slot_in(self.slots.len());
        self.arena.node_mut(idx).bucket = slot;
        self.arena.push_back(&mut self.slots[slot], idx);
        let ops = self.occupancy.set(slot);
        self.counters.charge_bitmap(ops);
    }

    /// Moves due overflow timers into the wheel. Called when the cursor
    /// completes a revolution; any timer due within the next revolution is
    /// admitted.
    fn drain_overflow(&mut self) {
        let range = self.max_interval();
        let mut cur = self.overflow.first();
        // tw-analyze: fact(loop_bounded, reason = "walks the overflow list once per revolution; amortized over the revolution's slot-count ticks, each resident is examined once per revolution exactly as the section 4 overflow argument prices it")
        while let Some(idx) = cur {
            cur = self.arena.next(idx);
            let remaining = self.arena.node(idx).deadline.since(self.now);
            debug_assert!(!remaining.is_zero(), "overflow timer already due");
            if remaining <= range {
                self.arena.unlink(&mut self.overflow, idx);
                self.enqueue(idx);
                self.counters.migrations += 1;
                self.counters.vax_instructions += self.cost.insert;
            } else {
                self.counters.decrements += 1;
                self.counters.vax_instructions += self.cost.decrement_step;
            }
        }
    }

    /// Advances the clock and cursor over `k` ticks the bitmap proved
    /// empty, with no per-slot examination at all: counted as elapsed
    /// ticks, but *not* as `empty_slot_skips` — the §7 4-instruction
    /// empty-slot test never executes.
    #[cfg(feature = "bitmap-cursor")]
    fn skip_empty_ticks(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        self.now = Tick(self.now.as_u64() + k);
        self.cursor = self.now.slot_in(self.slots.len());
        self.counters.ticks += k;
    }
}

impl<T> TimerScheme<T> for BasicWheel<T> {
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let max = self.max_interval();
        let (interval, park) = if interval <= max {
            (interval, false)
        } else {
            match self.overflow_policy.apply(max)? {
                Some(clamped) => (clamped, false),
                None => (interval, true),
            }
        };
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let (idx, handle) = self.arena.alloc(payload, deadline)?;
        if park {
            self.arena.node_mut(idx).bucket = OVERFLOW_BUCKET;
            self.arena.push_back(&mut self.overflow, idx);
        } else {
            self.enqueue(idx);
        }
        self.counters.starts += 1;
        self.counters.vax_instructions += self.cost.insert;
        Ok(handle)
    }

    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError> {
        let idx = self.arena.resolve(handle)?;
        let bucket = self.arena.node(idx).bucket;
        if bucket == OVERFLOW_BUCKET {
            self.arena.unlink(&mut self.overflow, idx);
        } else {
            self.arena.unlink(&mut self.slots[bucket], idx);
            if self.slots[bucket].is_empty() {
                let ops = self.occupancy.clear(bucket);
                self.counters.charge_bitmap(ops);
            }
        }
        self.counters.stops += 1;
        self.counters.vax_instructions += self.cost.delete;
        Ok(self.arena.free(idx))
    }

    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let max = self.max_interval();
        let (interval, park) = if interval <= max {
            (interval, false)
        } else {
            match self.overflow_policy.apply(max)? {
                Some(clamped) => (clamped, false),
                None => (interval, true),
            }
        };
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let idx = self.arena.resolve(handle)?;
        // All validation passed — from here the restart cannot fail. Unlink
        // from the current home; the node never touches the free list, so
        // the client's handle (and its generation) stay valid.
        let bucket = self.arena.node(idx).bucket;
        if bucket == OVERFLOW_BUCKET {
            self.arena.unlink(&mut self.overflow, idx);
        } else {
            self.arena.unlink(&mut self.slots[bucket], idx);
            if self.slots[bucket].is_empty() {
                let ops = self.occupancy.clear(bucket);
                self.counters.charge_bitmap(ops);
            }
        }
        self.arena.node_mut(idx).deadline = deadline;
        if park {
            self.arena.node_mut(idx).bucket = OVERFLOW_BUCKET;
            self.arena.push_back(&mut self.overflow, idx);
        } else {
            self.enqueue(idx);
        }
        self.counters.restarts += 1;
        // Modeled as one §7 delete followed by one insert, matching the
        // unlink+relink the update actually performs.
        self.counters.vax_instructions += self.cost.delete + self.cost.insert;
        Ok(())
    }

    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>)) {
        self.cursor = (self.cursor + 1) % self.slots.len();
        self.now = self.now.next();
        self.counters.ticks += 1;
        if self.slots[self.cursor].is_empty() {
            self.counters.empty_slot_skips += 1;
            self.counters.vax_instructions += self.cost.skip_empty;
        } else {
            self.counters.nonempty_slot_visits += 1;
            self.counters.vax_instructions += self.cost.skip_empty;
            // Every resident timer's deadline is within one revolution, so
            // everything in the slot the cursor landed on is due now.
            // tw-analyze: fact(loop_bounded, reason = "pops one expired timer per iteration from the flushed slot; the pop sits in a block the head-scan cannot see")
            while let Some(idx) = {
                let slot = &mut self.slots[self.cursor];
                self.arena.pop_front(slot)
            } {
                let handle = self.arena.handle_of(idx);
                let deadline = self.arena.node(idx).deadline;
                debug_assert_eq!(deadline, self.now, "basic wheel slot invariant violated");
                let payload = self.arena.free(idx);
                self.counters.expiries += 1;
                self.counters.vax_instructions += self.cost.expire;
                expired(Expired {
                    handle,
                    payload,
                    deadline,
                    fired_at: self.now,
                });
            }
            // The flush emptied the slot.
            let ops = self.occupancy.clear(self.cursor);
            self.counters.charge_bitmap(ops);
        }
        if self.cursor == 0 && !self.overflow.is_empty() {
            self.drain_overflow();
        }
    }

    #[cfg(feature = "bitmap-cursor")]
    fn advance_to_with(&mut self, deadline: Tick, expired: &mut dyn FnMut(Expired<T>)) {
        // tw-analyze: fact(loop_bounded, reason = "each iteration either lands the cursor on an occupied slot (charging its expiries) or jumps a whole empty stretch via the occupancy bitmap; iterations are bounded by occupied-slot visits, not elapsed ticks")
        while self.now < deadline {
            let remaining = deadline.since(self.now).as_u64();
            // Next tick that does real work: the cursor landing on an
            // occupied slot, or completing a revolution while timers are
            // parked on the overflow list (drained at cursor == 0).
            let probe = self.occupancy.next_occupied_delta(self.cursor);
            self.counters.charge_bitmap(1);
            let mut event = probe.unwrap_or(u64::MAX);
            if !self.overflow.is_empty() {
                let n = ticks_of(self.slots.len());
                event = event.min(crate::validate::ticks_until_visit(self.now.as_u64(), 0, n));
            }
            if event > remaining {
                self.skip_empty_ticks(remaining);
                return;
            }
            self.skip_empty_ticks(event - 1);
            self.tick(expired);
        }
    }

    fn now(&self) -> Tick {
        self.now
    }

    fn outstanding(&self) -> usize {
        self.arena.len()
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        self.arena.set_capacity_limit(limit);
        true
    }

    fn name(&self) -> &'static str {
        "scheme4(basic-wheel)"
    }
}

impl<T> crate::validate::InvariantCheck for BasicWheel<T> {
    /// Scheme 4 resting-state invariants: cursor congruent to the clock,
    /// slot-index congruence (`deadline ≡ slot (mod MaxInterval)`), every
    /// resident deadline within one revolution, overflow-parked timers
    /// strictly future, intact lists, and node count equal to `outstanding`.
    fn check_invariants(&self) -> Result<(), crate::validate::InvariantViolation> {
        use crate::validate::{ticks_until_visit, InvariantViolation};
        let scheme = self.name();
        let fail = |detail: alloc::string::String| Err(InvariantViolation::new(scheme, detail));
        let n = ticks_of(self.slots.len());
        let now = self.now.as_u64();
        if let Err(detail) = self.arena.check_storage() {
            return fail(detail);
        }
        if self.cursor != self.now.slot_in(self.slots.len()) {
            return fail(alloc::format!(
                "cursor {} is not now mod slots ({} mod {n})",
                self.cursor,
                now
            ));
        }
        let mut linked = 0usize;
        for (slot, list) in self.slots.iter().enumerate() {
            let nodes = match self.arena.check_list(list) {
                Ok(nodes) => nodes,
                Err(detail) => return fail(alloc::format!("slot {slot}: {detail}")),
            };
            if !self.occupancy.agrees_with(slot, !nodes.is_empty()) {
                return fail(alloc::format!(
                    "occupancy bitmap disagrees with slot {slot} (list len {} \
                     so expected occupied={})",
                    nodes.len(),
                    !nodes.is_empty()
                ));
            }
            linked += nodes.len();
            for idx in nodes {
                let node = self.arena.node(idx);
                let deadline = node.deadline.as_u64();
                if node.bucket != slot {
                    return fail(alloc::format!(
                        "node in slot {slot} tagged bucket {}",
                        node.bucket
                    ));
                }
                if node.deadline.slot_in(self.slots.len()) != slot {
                    return fail(alloc::format!(
                        "slot-index congruence: deadline {deadline} mod {n} != slot {slot}"
                    ));
                }
                let expect = now + ticks_until_visit(now, ticks_of(slot), n);
                if deadline != expect {
                    return fail(alloc::format!(
                        "resident deadline {deadline} not within one revolution \
                         (next visit of slot {slot} is tick {expect})"
                    ));
                }
            }
        }
        let overflow = match self.arena.check_list(&self.overflow) {
            Ok(nodes) => nodes,
            Err(detail) => return fail(alloc::format!("overflow list: {detail}")),
        };
        linked += overflow.len();
        for idx in overflow {
            let node = self.arena.node(idx);
            if node.bucket != OVERFLOW_BUCKET {
                return fail(alloc::format!(
                    "overflow node tagged bucket {} instead of the sentinel",
                    node.bucket
                ));
            }
            if node.deadline.as_u64() <= now {
                return fail(alloc::format!(
                    "overflow-parked deadline {} is not in the future (now {now})",
                    node.deadline.as_u64()
                ));
            }
        }
        if linked != self.arena.len() {
            return fail(alloc::format!(
                "{linked} nodes on lists but {} outstanding",
                self.arena.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::TimerSchemeExt;

    #[test]
    fn fires_at_exact_deadline() {
        let mut w: BasicWheel<u32> = BasicWheel::new(16);
        w.start_timer(TickDelta(1), 1).unwrap();
        w.start_timer(TickDelta(16), 16).unwrap();
        w.start_timer(TickDelta(7), 7).unwrap();
        let fired = w.collect_ticks(16);
        let got: Vec<(u32, u64)> = fired
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        assert_eq!(got, vec![(1, 1), (7, 7), (16, 16)]);
        for e in &fired {
            assert_eq!(e.error(), 0);
        }
    }

    #[test]
    fn max_interval_inclusive_rejects_beyond() {
        let mut w: BasicWheel<()> = BasicWheel::new(8);
        assert!(w.start_timer(TickDelta(8), ()).is_ok());
        assert_eq!(
            w.start_timer(TickDelta(9), ()),
            Err(TimerError::IntervalOutOfRange { max: TickDelta(8) })
        );
        assert_eq!(
            w.start_timer(TickDelta::ZERO, ()),
            Err(TimerError::ZeroInterval)
        );
    }

    #[test]
    fn cap_policy_fires_early_at_max() {
        let mut w: BasicWheel<()> = BasicWheel::build(8, OverflowPolicy::Cap);
        w.start_timer(TickDelta(100), ()).unwrap();
        let fired = w.collect_ticks(8);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(8));
        // Deadline records the *capped* schedule.
        assert_eq!(fired[0].deadline, Tick(8));
    }

    #[test]
    fn overflow_list_policy_fires_exactly() {
        let mut w: BasicWheel<u32> = BasicWheel::build(8, OverflowPolicy::OverflowList);
        w.start_timer(TickDelta(21), 21).unwrap();
        w.start_timer(TickDelta(8), 8).unwrap();
        w.start_timer(TickDelta(9), 9).unwrap();
        assert_eq!(w.overflow_len(), 2);
        let fired = w.collect_ticks(30);
        let got: Vec<(u32, u64)> = fired
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        assert_eq!(got, vec![(8, 8), (9, 9), (21, 21)]);
        assert_eq!(w.overflow_len(), 0);
    }

    #[test]
    fn stop_from_wheel_and_overflow() {
        let mut w: BasicWheel<u32> = BasicWheel::build(4, OverflowPolicy::OverflowList);
        let h1 = w.start_timer(TickDelta(2), 1).unwrap();
        let h2 = w.start_timer(TickDelta(20), 2).unwrap();
        assert_eq!(w.stop_timer(h1), Ok(1));
        assert_eq!(w.stop_timer(h2), Ok(2));
        assert_eq!(w.outstanding(), 0);
        assert!(w.collect_ticks(25).is_empty());
        assert_eq!(w.stop_timer(h1), Err(TimerError::Stale));
    }

    #[test]
    fn wraparound_many_revolutions() {
        let mut w: BasicWheel<u64> = BasicWheel::new(4);
        let mut fired_total = 0u64;
        for round in 0..100u64 {
            w.start_timer(TickDelta(3), round).unwrap();
            let fired = w.collect_ticks(3);
            fired_total += fired.len() as u64;
            assert_eq!(fired[0].payload, round);
        }
        assert_eq!(fired_total, 100);
        assert_eq!(w.now(), Tick(300));
    }

    #[test]
    fn counters_model_per_tick_cost() {
        let mut w: BasicWheel<()> = BasicWheel::new(16);
        w.run_ticks(10);
        let c = w.counters();
        assert_eq!(c.ticks, 10);
        assert_eq!(c.empty_slot_skips, 10);
        // 4 modeled instructions per empty tick (§7).
        assert_eq!(c.vax_instructions, 40);
    }

    #[test]
    fn same_slot_fifo_order() {
        let mut w: BasicWheel<u32> = BasicWheel::new(8);
        for i in 0..5 {
            w.start_timer(TickDelta(3), i).unwrap();
        }
        let fired = w.collect_ticks(3);
        let order: Vec<u32> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handle_stale_after_fire() {
        let mut w: BasicWheel<()> = BasicWheel::new(8);
        let h = w.start_timer(TickDelta(1), ()).unwrap();
        w.run_ticks(1);
        assert_eq!(w.stop_timer(h), Err(TimerError::Stale));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _: BasicWheel<()> = BasicWheel::new(0);
    }

    #[cfg(feature = "bitmap-cursor")]
    #[test]
    fn bitmap_advance_skips_empty_slots_entirely() {
        use crate::scheme::TimerScheme;
        let mut w: BasicWheel<u32> = BasicWheel::build(1024, OverflowPolicy::OverflowList);
        w.start_timer(TickDelta(700), 700).unwrap();
        w.start_timer(TickDelta(1500), 1500).unwrap(); // overflow-parked
        w.reset_counters();
        let mut fired = Vec::new();
        w.advance_to_with(Tick(1600), &mut |e| fired.push(e.payload));
        assert_eq!(fired, vec![700, 1500]);
        assert_eq!(w.now(), Tick(1600));
        let c = w.counters();
        assert_eq!(c.ticks, 1600);
        // The cursor jumped slot to slot: real ticks ran only at tick 700
        // (fire), tick 1024 (revolution boundary, overflow drain — its
        // slot 0 is empty, the one §7 empty-slot test that still runs)
        // and tick 1500 (fire). 1597 empty-slot tests vanished.
        assert_eq!(c.empty_slot_skips, 1);
        assert_eq!(c.nonempty_slot_visits, 2);
        assert_eq!(c.expiries, 2);
        assert!(c.bitmap_ops > 0, "probes and maintenance must be tallied");
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[cfg(feature = "bitmap-cursor")]
    #[test]
    fn bitmap_advance_matches_per_tick_loop() {
        use crate::scheme::TimerScheme;
        let mk = || {
            let mut w: BasicWheel<u32> = BasicWheel::build(64, OverflowPolicy::OverflowList);
            for (j, id) in [(1u64, 0u32), (63, 1), (64, 2), (65, 3), (200, 4)] {
                w.start_timer(TickDelta(j), id).unwrap();
            }
            w
        };
        let mut fast = mk();
        let mut slow = mk();
        let mut got = Vec::new();
        fast.advance_to_with(Tick(210), &mut |e| got.push((e.payload, e.fired_at)));
        let want: Vec<(u32, Tick)> = slow
            .collect_ticks(210)
            .into_iter()
            .map(|e| (e.payload, e.fired_at))
            .collect();
        assert_eq!(got, want);
        assert_eq!(fast.now(), slow.now());
        assert_eq!(fast.outstanding(), 0);
    }

    #[test]
    fn restart_rearms_to_a_new_deadline_with_the_same_handle() {
        let mut w: BasicWheel<&str> = BasicWheel::new(16);
        let h = w.start_timer(TickDelta(3), "x").unwrap();
        w.restart_timer(h, TickDelta(10)).unwrap();
        // Nothing fires at the original deadline.
        assert!(w.collect_ticks(3).is_empty());
        let fired = w.collect_ticks(7);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(10));
        assert_eq!(fired[0].deadline, Tick(10));
        assert_eq!(fired[0].handle, h);
        let c = w.counters();
        assert_eq!(c.restarts, 1);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn restart_moves_between_wheel_and_overflow() {
        let mut w: BasicWheel<u32> = BasicWheel::build(8, OverflowPolicy::OverflowList);
        let h = w.start_timer(TickDelta(2), 7).unwrap();
        // In-range → overflow-parked.
        w.restart_timer(h, TickDelta(30)).unwrap();
        assert_eq!(w.overflow_len(), 1);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        // Overflow-parked → back in range.
        w.restart_timer(h, TickDelta(5)).unwrap();
        assert_eq!(w.overflow_len(), 0);
        let fired = w.collect_ticks(5);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(5));
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn failed_restart_leaves_the_timer_armed() {
        let mut w: BasicWheel<u32> = BasicWheel::new(8);
        let h = w.start_timer(TickDelta(4), 4).unwrap();
        // Each rejection happens before any unlink...
        assert_eq!(
            w.restart_timer(h, TickDelta::ZERO),
            Err(TimerError::ZeroInterval)
        );
        assert_eq!(
            w.restart_timer(h, TickDelta(9)),
            Err(TimerError::IntervalOutOfRange { max: TickDelta(8) })
        );
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        // ...so the original deadline still stands.
        let fired = w.collect_ticks(4);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(4));
        assert_eq!(w.restart_timer(h, TickDelta(1)), Err(TimerError::Stale));
    }

    #[test]
    fn unrepresentable_deadline_is_an_error_not_a_panic() {
        let mut w: BasicWheel<()> = BasicWheel::build(8, OverflowPolicy::OverflowList);
        w.run_ticks(1);
        assert_eq!(
            w.start_timer(TickDelta(u64::MAX), ()),
            Err(TimerError::DeadlineOverflow)
        );
        assert_eq!(w.outstanding(), 0);
    }
}
