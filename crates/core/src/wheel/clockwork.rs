//! The hierarchical wheel driven exactly as §6.2 describes it — with real
//! per-level update timers.
//!
//! "Even if there are no timers requested by the user of the service, there
//! will always be a 60 second timer that is used to update the minute
//! array, a 60 minute timer to update the hour array, and a 24 hour timer
//! to update the day array. For instance, every time the 60 second timer
//! expires, we will increment the current minute timer, do any required
//! EXPIRY_PROCESSING for the minute timers, and re-insert another 60 second
//! timer."
//!
//! [`HierarchicalWheel`] realizes the same schedule arithmetically (advance
//! level ℓ whenever the clock crosses a multiple of its granularity);
//! [`ClockworkWheel`] instead plants an *update record* per level into the
//! next-finer array: the level-1 updater is an ordinary level-0 timer of
//! one full revolution, the level-2 updater an ordinary level-1 record, and
//! so on — the mechanism is entirely self-hosting, exactly as the paper
//! tells it. When an updater fires it advances its level's cursor, cascades
//! the slot (re-inserting user timers closer to the finest array, expiring
//! those already due), and re-arms itself.
//!
//! Both implementations are observationally identical (checked by the
//! `clockwork_matches_hierarchical` property test): same expiries at the
//! same ticks, at most m−1 migrations per timer. The difference is purely
//! mechanical — which makes it a faithful rendition of the paper's prose
//! rather than a reconstruction of its effect.
//!
//! [`HierarchicalWheel`]: crate::wheel::HierarchicalWheel

use alloc::vec::Vec;

use crate::arena::{ListHead, NodeIdx, TimerArena};
use crate::counters::{OpCounters, VaxCostModel};
use crate::handle::TimerHandle;
use crate::scheme::{Expired, TimerScheme};
use crate::time::{slot_index, ticks_of, Tick, TickDelta};
use crate::wheel::config::LevelSizes;
use crate::TimerError;

/// What a wheel record is.
enum Record<T> {
    /// Client timer carrying its payload.
    User(T),
    /// The per-level update timer: fires every revolution of level
    /// `level - 1` and advances level `level`'s cursor.
    Update {
        /// The level whose cursor this record advances (≥ 1).
        level: usize,
    },
}

struct Level<T> {
    slots: Vec<ListHead>,
    cursor: usize,
    granularity: u64,
    size: u64,
    base: usize,
    _marker: core::marker::PhantomData<T>,
}

/// Scheme 7 with literal per-level update timers. See the
/// [module docs](self).
pub struct ClockworkWheel<T> {
    levels: Vec<Level<T>>,
    now: Tick,
    range: u64,
    arena: TimerArena<Record<T>>,
    counters: OpCounters,
    cost: VaxCostModel,
}

impl<T> ClockworkWheel<T> {
    /// Creates the hierarchy and plants one update timer per upper level.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is invalid (see [`LevelSizes::validate`]).
    #[must_use]
    pub fn new(sizes: LevelSizes) -> ClockworkWheel<T> {
        sizes.validate();
        let mut levels = Vec::with_capacity(sizes.0.len());
        let mut granularity = 1u64;
        let mut base = 0usize;
        for &size in &sizes.0 {
            levels.push(Level {
                slots: (0..size).map(|_| ListHead::new()).collect(),
                cursor: 0,
                granularity,
                size,
                base,
                _marker: core::marker::PhantomData,
            });
            base += usize::try_from(size).expect("level size exceeds usize");
            granularity = granularity.saturating_mul(size);
        }
        let mut wheel = ClockworkWheel {
            levels,
            now: Tick::ZERO,
            range: sizes.range(),
            arena: TimerArena::new(),
            counters: OpCounters::new(),
            cost: VaxCostModel::PAPER,
        };
        // "There will always be a 60 second timer…" — one updater per upper
        // level, each living one level *below* the array it advances (the
        // 60-second timer is an ordinary seconds-array record; the
        // 60-minute timer an ordinary minute-array record, and so on).
        for level in 1..wheel.levels.len() {
            let g = wheel.levels[level].granularity;
            let (idx, _) = wheel
                .arena
                .alloc(Record::Update { level }, Tick(g))
                .expect("a fresh arena cannot be exhausted by m - 1 updaters");
            wheel.place_at_level(idx, g, level - 1);
        }
        wheel
    }

    /// The largest interval accepted (one tick less than the total range).
    #[must_use]
    pub fn max_interval(&self) -> TickDelta {
        TickDelta(self.range - 1)
    }

    /// Number of levels (the paper's `m`).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Places an allocated record for absolute firing time `target` using
    /// the paper's digit rule: the highest level whose slot-period quotient
    /// differs between now and the target.
    fn place(&mut self, idx: NodeIdx, target: u64) {
        let now = self.now.as_u64();
        debug_assert!(target > now, "target must be in the future");
        // Level 0 has granularity 1, so target > now (asserted above)
        // always differs in the level-0 quotient; 0 is exact, not a guess.
        let level = self
            .levels
            .iter()
            // tw-analyze: fact(loop_bounded, reason = "walks self.levels, whose length is the const level count fixed at construction; this is the paper's O(levels) digit scan")
            .rposition(|l| target / l.granularity != now / l.granularity)
            .unwrap_or(0);
        self.place_at_level(idx, target, level);
    }

    /// Places a record into a specific level's array. Updaters use this
    /// directly: the level-ℓ updater must sit in the level-(ℓ−1) array it
    /// rides on, where the digit rule would circularly pick level ℓ itself.
    fn place_at_level(&mut self, idx: NodeIdx, target: u64, level: usize) {
        let l = &self.levels[level];
        let slot = slot_index((target / l.granularity) % l.size);
        {
            let node = self.arena.node_mut(idx);
            node.aux = target;
            node.bucket = l.base + slot;
        }
        self.arena
            .push_back(&mut self.levels[level].slots[slot], idx);
    }

    fn level_of_bucket(&self, bucket: usize) -> usize {
        // Level 0 has base 0, so every bucket tag matches at least level 0.
        self.levels
            .iter()
            // tw-analyze: fact(loop_bounded, reason = "walks self.levels, whose length is the const level count fixed at construction; O(levels) by definition")
            .rposition(|l| l.base <= bucket)
            .unwrap_or(0)
    }

    /// Processes one record found in a flushed slot: expire user timers,
    /// cascade not-yet-due ones, advance-and-rearm updaters.
    fn dispatch(&mut self, idx: NodeIdx, expired: &mut dyn FnMut(Expired<T>)) {
        let now = self.now.as_u64();
        let target = self.arena.node(idx).aux;
        debug_assert!(target >= now, "clockwork missed a firing target");
        if target > now {
            // A user timer cascading toward finer arrays — "EXPIRY_
            // PROCESSING will insert the remainder… in the minute array".
            self.counters.migrations += 1;
            self.counters.vax_instructions += self.cost.insert;
            self.place(idx, target);
            return;
        }
        if let Record::Update { level } = self.arena.node(idx).payload {
            // "Increment the current minute timer, do any required
            // EXPIRY_PROCESSING for the minute timers, and re-insert
            // another 60 second timer."
            let l = &mut self.levels[level];
            l.cursor = (l.cursor + 1) % l.slots.len();
            let cursor = l.cursor;
            debug_assert_eq!(ticks_of(cursor), (now / l.granularity) % l.size);
            let mut due = core::mem::take(&mut self.levels[level].slots[cursor]);
            self.counters.vax_instructions += self.cost.skip_empty;
            if due.is_empty() {
                self.counters.empty_slot_skips += 1;
            } else {
                self.counters.nonempty_slot_visits += 1;
            }
            while let Some(rec) = self.arena.pop_front(&mut due) {
                self.counters.decrements += 1;
                self.counters.vax_instructions += self.cost.decrement_step;
                self.dispatch(rec, expired);
            }
            // Re-arm the updater one granularity ahead, back into the level
            // below (its home array). The updater was popped from its slot
            // (already unlinked), so re-aiming it is a pure relink: the
            // clockwork never touches the allocator on the tick path, and
            // an exhausted arena can never stall the clock.
            let g = self.levels[level].granularity;
            self.arena.node_mut(idx).deadline = Tick(now + g);
            self.place_at_level(idx, now + g, level - 1);
            return;
        }
        let handle = self.arena.handle_of(idx);
        let deadline = self.arena.node(idx).deadline;
        // Updaters re-armed above without freeing; only user records reach
        // the arena round trip and the expiry callback.
        if let Record::User(payload) = self.arena.free(idx) {
            self.counters.expiries += 1;
            self.counters.vax_instructions += self.cost.expire;
            expired(Expired {
                handle,
                payload,
                deadline,
                fired_at: self.now,
            });
        }
    }
}

impl<T> TimerScheme<T> for ClockworkWheel<T> {
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        if interval > self.max_interval() {
            return Err(TimerError::IntervalOutOfRange {
                max: self.max_interval(),
            });
        }
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let (idx, handle) = self.arena.alloc(Record::User(payload), deadline)?;
        self.place(idx, deadline.as_u64());
        self.counters.starts += 1;
        self.counters.vax_instructions += self.cost.insert;
        Ok(handle)
    }

    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError> {
        let idx = self.arena.resolve(handle)?;
        if matches!(self.arena.node(idx).payload, Record::Update { .. }) {
            // Update-timer handles never escape; a forged handle could still
            // land here, and cancelling the clockwork must be impossible.
            return Err(TimerError::Stale);
        }
        let bucket = self.arena.node(idx).bucket;
        let level = self.level_of_bucket(bucket);
        // tw-analyze: fact(slot_bounded, reason = "bucket tags are only written by place_at_level from slot_in-style modular arithmetic, and level_of_bucket proves base <= bucket < base + size, so the difference is a valid in-level slot")
        let slot = bucket - self.levels[level].base;
        self.arena.unlink(&mut self.levels[level].slots[slot], idx);
        self.counters.stops += 1;
        self.counters.vax_instructions += self.cost.delete;
        match self.arena.free(idx) {
            Record::User(payload) => Ok(payload),
            // Updater records were already rejected with Stale above; keep
            // the same rejection rather than a panic if that guard drifts.
            Record::Update { .. } => Err(TimerError::Stale),
        }
    }

    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        if interval > self.max_interval() {
            return Err(TimerError::IntervalOutOfRange {
                max: self.max_interval(),
            });
        }
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let idx = self.arena.resolve(handle)?;
        if matches!(self.arena.node(idx).payload, Record::Update { .. }) {
            // As in stop_timer: update-timer handles never escape, but a
            // forged handle must not be able to re-aim the clockwork.
            return Err(TimerError::Stale);
        }
        // All validation passed — from here the restart cannot fail. Unlink
        // from the current level; the node never touches the free list, so
        // the client's handle (and its generation) stay valid.
        let bucket = self.arena.node(idx).bucket;
        let level = self.level_of_bucket(bucket);
        // tw-analyze: fact(slot_bounded, reason = "bucket tags are only written by place_at_level from slot_in-style modular arithmetic, and level_of_bucket proves base <= bucket < base + size, so the difference is a valid in-level slot")
        let slot = bucket - self.levels[level].base;
        self.arena.unlink(&mut self.levels[level].slots[slot], idx);
        self.arena.node_mut(idx).deadline = deadline;
        // `place` re-runs the digit rule for the new target and overwrites
        // `aux` wholesale.
        self.place(idx, deadline.as_u64());
        self.counters.restarts += 1;
        // Modeled as one §7 delete followed by one insert, matching the
        // unlink+relink the update actually performs.
        self.counters.vax_instructions += self.cost.delete + self.cost.insert;
        Ok(())
    }

    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>)) {
        self.now = self.now.next();
        self.counters.ticks += 1;
        let now = self.now.as_u64();
        // "The seconds array works as usual: every time the hardware clock
        // ticks we increment the second pointer."
        let l0 = &mut self.levels[0];
        l0.cursor = (l0.cursor + 1) % l0.slots.len();
        let cursor = l0.cursor;
        debug_assert_eq!(ticks_of(cursor), now % self.levels[0].size);
        self.counters.vax_instructions += self.cost.skip_empty;
        if self.levels[0].slots[cursor].is_empty() {
            self.counters.empty_slot_skips += 1;
            return;
        }
        self.counters.nonempty_slot_visits += 1;
        let mut due = core::mem::take(&mut self.levels[0].slots[cursor]);
        while let Some(idx) = self.arena.pop_front(&mut due) {
            self.counters.decrements += 1;
            self.counters.vax_instructions += self.cost.decrement_step;
            self.dispatch(idx, expired);
        }
    }

    fn now(&self) -> Tick {
        self.now
    }

    fn outstanding(&self) -> usize {
        // The m−1 updaters are infrastructure, not client timers.
        self.arena.len() - (self.levels.len() - 1)
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        self.arena.set_capacity_limit(limit);
        true
    }

    fn name(&self) -> &'static str {
        "scheme7(clockwork)"
    }
}

impl<T> crate::validate::InvariantCheck for ClockworkWheel<T> {
    /// Clockwork invariants: level geometry, every cursor at
    /// `(now / granularity) mod size`, exactly one live update record per
    /// upper level riding the array one level below with its next firing at
    /// the coming granularity boundary, every user record at the level the
    /// digit rule picks for it today, and node count matching the lists.
    fn check_invariants(&self) -> Result<(), crate::validate::InvariantViolation> {
        use crate::validate::InvariantViolation;
        let scheme = self.name();
        let fail = |detail: alloc::string::String| Err(InvariantViolation::new(scheme, detail));
        let now = self.now.as_u64();
        if let Err(detail) = self.arena.check_storage() {
            return fail(detail);
        }
        let mut granularity = 1u64;
        let mut base = 0usize;
        for (i, level) in self.levels.iter().enumerate() {
            if level.granularity != granularity || level.base != base {
                return fail(alloc::format!(
                    "level {i} geometry drift: granularity {} base {} \
                     (expected {granularity}/{base})",
                    level.granularity,
                    level.base
                ));
            }
            if level.size != ticks_of(level.slots.len()) {
                return fail(alloc::format!("level {i} size/slot-count mismatch"));
            }
            if ticks_of(level.cursor) != (now / level.granularity) % level.size {
                return fail(alloc::format!(
                    "level {i} cursor {} out of phase with now {now}",
                    level.cursor
                ));
            }
            granularity = granularity.saturating_mul(level.size);
            base += level.slots.len();
        }
        let mut linked = 0usize;
        let mut updater_seen = alloc::vec![false; self.levels.len()];
        for (i, level) in self.levels.iter().enumerate() {
            for (slot, list) in level.slots.iter().enumerate() {
                let nodes = match self.arena.check_list(list) {
                    Ok(nodes) => nodes,
                    Err(detail) => return fail(alloc::format!("level {i} slot {slot}: {detail}")),
                };
                linked += nodes.len();
                for idx in nodes {
                    let node = self.arena.node(idx);
                    let target = node.aux;
                    if node.bucket != level.base + slot {
                        return fail(alloc::format!(
                            "node in level {i} slot {slot} tagged bucket {}",
                            node.bucket
                        ));
                    }
                    if target != node.deadline.as_u64() {
                        return fail(alloc::format!(
                            "firing target {target} != deadline {}",
                            node.deadline.as_u64()
                        ));
                    }
                    if target <= now {
                        return fail(alloc::format!(
                            "firing target {target} is not in the future (now {now})"
                        ));
                    }
                    if slot_index((target / level.granularity) % level.size) != slot {
                        return fail(alloc::format!(
                            "level {i} slot congruence: target {target} / {} mod {} != {slot}",
                            level.granularity,
                            level.size
                        ));
                    }
                    match node.payload {
                        Record::User(_) => {
                            let Some(expect) = self
                                .levels
                                .iter()
                                .rposition(|l| target / l.granularity != now / l.granularity)
                            else {
                                return fail(alloc::format!(
                                    "digit rule has no level for target {target} at now {now}"
                                ));
                            };
                            if expect != i {
                                return fail(alloc::format!(
                                    "user record at level {i} but the digit rule \
                                     places target {target} at level {expect}"
                                ));
                            }
                        }
                        Record::Update { level: advanced } => {
                            if advanced != i + 1 {
                                return fail(alloc::format!(
                                    "level-{advanced} updater riding level {i} \
                                     instead of level {}",
                                    advanced.wrapping_sub(1)
                                ));
                            }
                            if updater_seen[advanced] {
                                return fail(alloc::format!(
                                    "duplicate update timer for level {advanced}"
                                ));
                            }
                            updater_seen[advanced] = true;
                            let g = self.levels[advanced].granularity;
                            if target != (now / g + 1) * g {
                                return fail(alloc::format!(
                                    "level-{advanced} updater armed for {target}, \
                                     not the next granularity-{g} boundary after {now}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        for (lvl, seen) in updater_seen.iter().enumerate().skip(1) {
            if !seen {
                return fail(alloc::format!("level {lvl} has no update timer"));
            }
        }
        if linked != self.arena.len() {
            return fail(alloc::format!(
                "{linked} nodes on lists but {} in the arena",
                self.arena.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::TimerSchemeExt;

    #[test]
    fn updaters_run_forever_with_no_user_timers() {
        let mut w: ClockworkWheel<()> = ClockworkWheel::new(LevelSizes(vec![4, 4, 4]));
        assert_eq!(w.outstanding(), 0);
        assert!(w.collect_ticks(200).is_empty());
        assert_eq!(w.now(), Tick(200));
        assert_eq!(w.outstanding(), 0, "updaters are not client timers");
    }

    #[test]
    fn fires_exactly_across_levels() {
        let mut w: ClockworkWheel<u64> = ClockworkWheel::new(LevelSizes(vec![8, 8, 8]));
        for &j in &[1u64, 7, 8, 9, 63, 64, 65, 100, 511] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(511);
        let got: Vec<(u64, u64)> = fired
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        let want: Vec<(u64, u64)> = [1u64, 7, 8, 9, 63, 64, 65, 100, 511]
            .iter()
            .map(|&j| (j, j))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn paper_clock_example_end_to_end() {
        // The §6.2 worked example on the literal mechanism.
        let mut w: ClockworkWheel<&str> = ClockworkWheel::new(LevelSizes::clock());
        let start = ((11 * 24 + 10) * 60 + 24) * 60 + 30;
        w.run_ticks(start);
        w.start_timer(TickDelta(50 * 60 + 45), "fig10").unwrap();
        let fired = w.collect_ticks(50 * 60 + 45);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(990_915));
        assert_eq!(fired[0].error(), 0);
    }

    #[test]
    fn stop_works_and_updaters_cannot_be_stopped() {
        let mut w: ClockworkWheel<u64> = ClockworkWheel::new(LevelSizes(vec![8, 8]));
        let h = w.start_timer(TickDelta(40), 40).unwrap();
        assert_eq!(w.stop_timer(h), Ok(40));
        assert_eq!(w.stop_timer(h), Err(TimerError::Stale));
        // The clockwork keeps turning afterwards.
        w.start_timer(TickDelta(50), 50).unwrap();
        let fired = w.collect_ticks(64);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(50));
    }

    #[test]
    fn range_bounds_enforced() {
        let mut w: ClockworkWheel<()> = ClockworkWheel::new(LevelSizes(vec![4, 4]));
        assert_eq!(
            w.start_timer(TickDelta(16), ()),
            Err(TimerError::IntervalOutOfRange { max: TickDelta(15) })
        );
        assert_eq!(
            w.start_timer(TickDelta::ZERO, ()),
            Err(TimerError::ZeroInterval)
        );
        assert!(w.start_timer(TickDelta(15), ()).is_ok());
    }

    #[test]
    fn migrations_bounded_by_level_count() {
        let mut w: ClockworkWheel<()> = ClockworkWheel::new(LevelSizes(vec![8, 8, 8]));
        w.start_timer(TickDelta(500), ()).unwrap();
        w.run_ticks(500);
        assert_eq!(w.counters().expiries, 1);
        assert!(w.counters().migrations <= 2, "m - 1 = 2 migrations max");
    }

    #[test]
    fn restart_rearms_across_levels_with_the_same_handle() {
        let mut w: ClockworkWheel<&str> = ClockworkWheel::new(LevelSizes(vec![8, 8, 8]));
        let h = w.start_timer(TickDelta(3), "x").unwrap();
        w.restart_timer(h, TickDelta(400)).unwrap();
        assert!(w.collect_ticks(3).is_empty());
        let fired = w.collect_ticks(397);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(400));
        assert_eq!(fired[0].handle, h);
        assert_eq!(fired[0].error(), 0);
        assert_eq!(w.counters().restarts, 1);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn restart_to_earlier_deadline_fires_exactly() {
        let mut w: ClockworkWheel<()> = ClockworkWheel::new(LevelSizes(vec![8, 8]));
        w.run_ticks(13); // misalign the clock
        let h = w.start_timer(TickDelta(60), ()).unwrap();
        w.restart_timer(h, TickDelta(2)).unwrap();
        let fired = w.collect_ticks(2);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(15));
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn failed_restart_leaves_the_timer_armed_and_clockwork_safe() {
        let mut w: ClockworkWheel<()> = ClockworkWheel::new(LevelSizes(vec![4, 4]));
        let h = w.start_timer(TickDelta(4), ()).unwrap();
        assert_eq!(
            w.restart_timer(h, TickDelta::ZERO),
            Err(TimerError::ZeroInterval)
        );
        assert_eq!(
            w.restart_timer(h, TickDelta(16)),
            Err(TimerError::IntervalOutOfRange { max: TickDelta(15) })
        );
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        let fired = w.collect_ticks(4);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(4));
        assert_eq!(w.restart_timer(h, TickDelta(1)), Err(TimerError::Stale));
        // The clockwork keeps turning after all of it.
        w.start_timer(TickDelta(10), ()).unwrap();
        assert_eq!(w.collect_ticks(16).len(), 1);
    }
}
