//! Scheme 5 — hash table with sorted lists in each bucket (§6.1.1,
//! Figure 9).
//!
//! As in Scheme 6 the interval is hashed (mod table size) onto a wheel slot,
//! but each bucket keeps its timers *sorted* by expiry, "exactly as in
//! Scheme 2". `PER_TICK_BOOKKEEPING` then examines only the head of the
//! bucket the cursor lands on, so its latency is O(1) worst case (except
//! when several timers expire together, "which is the best we can do").
//! The price is paid at `START_TIMER`: the sorted insert is O(bucket length),
//! which is O(1) *average* only while `n < TableSize` and the hash spreads
//! timers well — the reason §7 judges Scheme 5 to depend "too much on the
//! hash distribution to be generally useful".
//!
//! The paper describes the sort key as the stored high-order bits (rounds).
//! We sort on the absolute deadline, which orders identically within a
//! bucket (all deadlines in a bucket are congruent mod the table size, so
//! comparing deadlines compares rounds) and avoids the delta-decrement
//! subtlety; §3.1 licenses the substitution ("we can store the absolute time
//! at which timers expire and do a COMPARE — this option is valid for all
//! timer schemes we describe").

use alloc::vec::Vec;

use crate::arena::{ListHead, NodeIdx, TimerArena};
use crate::bitmap::SlotBitmap;
use crate::counters::{OpCounters, VaxCostModel};
use crate::handle::TimerHandle;
use crate::scheme::{Expired, TimerScheme};
use crate::time::{pow2_mask, ticks_of, Tick, TickDelta};
use crate::TimerError;

/// Scheme 5: hashed timing wheel with sorted per-bucket lists.
/// See the [module docs](self).
pub struct HashedWheelSorted<T> {
    slots: Vec<ListHead>,
    /// `Some(size - 1)` when the table size is a power of two: indexing is
    /// then a single AND, the §6.1.2 recommendation ("Obtaining the
    /// remainder after dividing by a power of 2 is cheap").
    mask: Option<u64>,
    cursor: usize,
    now: Tick,
    arena: TimerArena<T>,
    /// Two-tier slot-occupancy bitmap (zero-sized no-op without the
    /// `bitmap-cursor` feature); bit set ⇔ bucket non-empty.
    occupancy: SlotBitmap,
    counters: OpCounters,
    cost: VaxCostModel,
}

impl<T> HashedWheelSorted<T> {
    /// Creates a wheel with `table_size` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `table_size` is zero.
    #[must_use]
    pub fn new(table_size: usize) -> HashedWheelSorted<T> {
        assert!(table_size > 0, "wheel needs at least one bucket");
        HashedWheelSorted {
            slots: (0..table_size).map(|_| ListHead::new()).collect(),
            mask: pow2_mask(table_size),
            cursor: 0,
            now: Tick::ZERO,
            arena: TimerArena::new(),
            occupancy: SlotBitmap::new(table_size),
            counters: OpCounters::new(),
            cost: VaxCostModel::PAPER,
        }
    }

    /// The table size `N`.
    #[must_use]
    pub fn table_size(&self) -> usize {
        self.slots.len()
    }

    /// Number of timers currently hashed into `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= table_size()`.
    #[must_use]
    pub fn bucket_len(&self, slot: usize) -> usize {
        self.slots[slot].len()
    }

    /// Advances the clock and cursor over `k` ticks the bitmap proved
    /// empty, with no per-slot examination (no `empty_slot_skips`, no §7
    /// 4-instruction test).
    #[cfg(feature = "bitmap-cursor")]
    fn skip_empty_ticks(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        self.now = Tick(self.now.as_u64() + k);
        self.cursor = self.now.slot_in(self.slots.len());
        self.counters.ticks += k;
    }

    /// Sorted insert of a node into `slot` (front search; ties keep FIFO
    /// order by inserting after existing equal deadlines). Returns the walk
    /// length, which the caller prices. Shared by the start and restart
    /// paths so both keep the same Scheme 5 trade-off. The caller tags the
    /// node's `bucket` field — it owns the choke-pointed slot computation.
    fn sorted_link(&mut self, idx: NodeIdx, slot: usize, deadline: Tick) -> u64 {
        let mut at = self.slots[slot].first();
        let mut steps = 0u64;
        // tw-analyze: fact(loop_bounded, reason = "sorted-insert walk of one hash bucket: worst case n/slots entries, O(1) average per section 6.1.1 -- the documented START trade-off of Scheme 5, priced by the steps counter")
        while let Some(cur) = at {
            steps += 1;
            if self.arena.node(cur).deadline > deadline {
                break;
            }
            at = self.arena.next(cur);
        }
        match at {
            Some(before) => self.arena.insert_before(&mut self.slots[slot], before, idx),
            None => self.arena.push_back(&mut self.slots[slot], idx),
        }
        let ops = self.occupancy.set(slot);
        self.counters.charge_bitmap(ops);
        self.counters.start_steps += steps;
        steps
    }
}

impl<T> TimerScheme<T> for HashedWheelSorted<T> {
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        // `cursor ≡ now (mod N)`, so hashing the deadline lands on the same
        // slot as the paper's `(cursor + j) mod N` — and stays in the audited
        // conversion helpers.
        let slot = match self.mask {
            Some(mask) => deadline.slot_masked(mask),
            None => deadline.slot_in(self.slots.len()),
        };
        let (idx, handle) = self.arena.alloc(payload, deadline)?;
        self.arena.node_mut(idx).bucket = slot;
        let steps = self.sorted_link(idx, slot, deadline);
        self.counters.starts += 1;
        self.counters.vax_instructions += self.cost.insert + steps * self.cost.decrement_step;
        Ok(handle)
    }

    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError> {
        let idx = self.arena.resolve(handle)?;
        let bucket = self.arena.node(idx).bucket;
        self.arena.unlink(&mut self.slots[bucket], idx);
        if self.slots[bucket].is_empty() {
            let ops = self.occupancy.clear(bucket);
            self.counters.charge_bitmap(ops);
        }
        self.counters.stops += 1;
        self.counters.vax_instructions += self.cost.delete;
        Ok(self.arena.free(idx))
    }

    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let idx = self.arena.resolve(handle)?;
        // All validation passed — from here the restart cannot fail. Unlink
        // from the current bucket; the node never touches the free list, so
        // the client's handle (and its generation) stay valid.
        let bucket = self.arena.node(idx).bucket;
        self.arena.unlink(&mut self.slots[bucket], idx);
        if self.slots[bucket].is_empty() {
            let ops = self.occupancy.clear(bucket);
            self.counters.charge_bitmap(ops);
        }
        let slot = match self.mask {
            Some(mask) => deadline.slot_masked(mask),
            None => deadline.slot_in(self.slots.len()),
        };
        self.arena.node_mut(idx).deadline = deadline;
        self.arena.node_mut(idx).bucket = slot;
        let steps = self.sorted_link(idx, slot, deadline);
        self.counters.restarts += 1;
        // One §7 delete plus the same sorted insert a fresh start would pay.
        self.counters.vax_instructions +=
            self.cost.delete + self.cost.insert + steps * self.cost.decrement_step;
        Ok(())
    }

    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>)) {
        self.cursor = (self.cursor + 1) % self.slots.len();
        self.now = self.now.next();
        self.counters.ticks += 1;
        self.counters.vax_instructions += self.cost.skip_empty;
        if self.slots[self.cursor].is_empty() {
            self.counters.empty_slot_skips += 1;
            return;
        }
        self.counters.nonempty_slot_visits += 1;
        // Only the head needs examining: the bucket is sorted, and anything
        // due this revolution has deadline == now when the cursor arrives.
        // tw-analyze: fact(loop_bounded, reason = "pops expired heads only: the bucket is sorted, so the loop exits at the first not-yet-due entry after one O(1) compare; iterations = expiries + 1")
        while let Some(idx) = self.slots[self.cursor].first() {
            self.counters.decrements += 1;
            self.counters.vax_instructions += self.cost.decrement_step;
            let deadline = self.arena.node(idx).deadline;
            debug_assert!(deadline >= self.now, "scheme 5 missed an expiry");
            if deadline > self.now {
                break;
            }
            self.arena.unlink(&mut self.slots[self.cursor], idx);
            let handle = self.arena.handle_of(idx);
            let payload = self.arena.free(idx);
            self.counters.expiries += 1;
            self.counters.vax_instructions += self.cost.expire;
            expired(Expired {
                handle,
                payload,
                deadline,
                fired_at: self.now,
            });
        }
        if self.slots[self.cursor].is_empty() {
            let ops = self.occupancy.clear(self.cursor);
            self.counters.charge_bitmap(ops);
        }
    }

    #[cfg(feature = "bitmap-cursor")]
    fn advance_to_with(&mut self, deadline: Tick, expired: &mut dyn FnMut(Expired<T>)) {
        // Every occupied bucket must still be visited each revolution (the
        // head compare is the §6.1.1 per-visit work), but runs of empty
        // buckets are jumped in one go.
        // tw-analyze: fact(loop_bounded, reason = "each iteration either visits an occupied bucket or jumps a whole empty stretch via the occupancy bitmap; iterations are bounded by occupied-bucket visits, not elapsed ticks")
        while self.now < deadline {
            let remaining = deadline.since(self.now).as_u64();
            let probe = self.occupancy.next_occupied_delta(self.cursor);
            self.counters.charge_bitmap(1);
            let event = probe.unwrap_or(u64::MAX);
            if event > remaining {
                self.skip_empty_ticks(remaining);
                return;
            }
            self.skip_empty_ticks(event - 1);
            self.tick(expired);
        }
    }

    fn now(&self) -> Tick {
        self.now
    }

    fn outstanding(&self) -> usize {
        self.arena.len()
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        self.arena.set_capacity_limit(limit);
        true
    }

    fn name(&self) -> &'static str {
        "scheme5(hashed-sorted)"
    }
}

impl<T> crate::validate::InvariantCheck for HashedWheelSorted<T> {
    /// Scheme 5 resting-state invariants: cursor congruent to the clock,
    /// slot-index congruence (`deadline ≡ slot (mod TableSize)`), strictly
    /// future deadlines, each bucket sorted ascending by deadline, intact
    /// lists, and node count equal to `outstanding`.
    fn check_invariants(&self) -> Result<(), crate::validate::InvariantViolation> {
        use crate::validate::InvariantViolation;
        let scheme = self.name();
        let fail = |detail: alloc::string::String| Err(InvariantViolation::new(scheme, detail));
        let n = ticks_of(self.slots.len());
        let now = self.now.as_u64();
        if let Err(detail) = self.arena.check_storage() {
            return fail(detail);
        }
        if self.cursor != self.now.slot_in(self.slots.len()) {
            return fail(alloc::format!(
                "cursor {} is not now mod table size ({now} mod {n})",
                self.cursor
            ));
        }
        let mut linked = 0usize;
        for (slot, list) in self.slots.iter().enumerate() {
            let nodes = match self.arena.check_list(list) {
                Ok(nodes) => nodes,
                Err(detail) => return fail(alloc::format!("bucket {slot}: {detail}")),
            };
            if !self.occupancy.agrees_with(slot, !nodes.is_empty()) {
                return fail(alloc::format!(
                    "occupancy bitmap disagrees with bucket {slot} (list len {} \
                     so expected occupied={})",
                    nodes.len(),
                    !nodes.is_empty()
                ));
            }
            linked += nodes.len();
            let mut prev_deadline = 0u64;
            for idx in nodes {
                let node = self.arena.node(idx);
                let deadline = node.deadline.as_u64();
                if node.bucket != slot {
                    return fail(alloc::format!(
                        "node in bucket {slot} tagged bucket {}",
                        node.bucket
                    ));
                }
                if node.deadline.slot_in(self.slots.len()) != slot {
                    return fail(alloc::format!(
                        "slot-index congruence: deadline {deadline} mod {n} != slot {slot}"
                    ));
                }
                if deadline <= now {
                    return fail(alloc::format!(
                        "resident deadline {deadline} is not in the future (now {now})"
                    ));
                }
                if deadline < prev_deadline {
                    return fail(alloc::format!(
                        "bucket {slot} unsorted: {deadline} follows {prev_deadline}"
                    ));
                }
                prev_deadline = deadline;
            }
        }
        if linked != self.arena.len() {
            return fail(alloc::format!(
                "{linked} nodes on lists but {} outstanding",
                self.arena.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::TimerSchemeExt;

    #[test]
    fn fires_at_exact_deadline_across_rounds() {
        let mut w: HashedWheelSorted<u64> = HashedWheelSorted::new(8);
        for &j in &[1u64, 8, 9, 16, 23, 64, 100] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(100);
        let got: Vec<(u64, u64)> = fired
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        assert_eq!(
            got,
            vec![
                (1, 1),
                (8, 8),
                (9, 9),
                (16, 16),
                (23, 23),
                (64, 64),
                (100, 100)
            ]
        );
    }

    #[test]
    fn bucket_stays_sorted_under_mixed_inserts() {
        let mut w: HashedWheelSorted<u64> = HashedWheelSorted::new(4);
        // All hash to slot 0 with different rounds, inserted out of order.
        for &j in &[16u64, 4, 12, 8, 20] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        assert_eq!(w.bucket_len(0), 5);
        let fired = w.collect_ticks(20);
        let got: Vec<u64> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![4, 8, 12, 16, 20]);
    }

    #[test]
    fn only_head_examined_per_visit() {
        let mut w: HashedWheelSorted<()> = HashedWheelSorted::new(4);
        // 50 long-lived timers in one bucket.
        for _ in 0..50 {
            w.start_timer(TickDelta(400), ()).unwrap();
        }
        w.reset_counters();
        w.run_ticks(4);
        // One head examination per visit of the loaded bucket, not 50.
        assert_eq!(w.counters().decrements, 1);
    }

    #[cfg(feature = "bitmap-cursor")]
    #[test]
    fn bitmap_advance_still_visits_every_occupied_bucket() {
        use crate::scheme::TimerScheme;
        let mut w: HashedWheelSorted<u64> = HashedWheelSorted::new(256);
        // One far timer: its bucket must be head-checked on every
        // revolution, everything else is jumped.
        w.start_timer(TickDelta(1000), 1000).unwrap();
        w.reset_counters();
        let mut fired = Vec::new();
        w.advance_to_with(Tick(1000), &mut |e| fired.push(e.payload));
        assert_eq!(fired, vec![1000]);
        let c = w.counters();
        assert_eq!(c.ticks, 1000);
        assert_eq!(c.empty_slot_skips, 0);
        // ⌈1000 / 256⌉ visits of the occupied bucket, one head compare each
        // until the final one fires.
        assert_eq!(c.nonempty_slot_visits, 4);
        assert_eq!(c.decrements, 4);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn insert_cost_grows_with_bucket_occupancy() {
        let mut w: HashedWheelSorted<()> = HashedWheelSorted::new(4);
        for k in 1..=20u64 {
            w.start_timer(TickDelta(4 * k), ()).unwrap();
        }
        // Inserting at increasing deadlines from the front walks the whole
        // bucket: 0 + 1 + ... + 19 steps.
        assert_eq!(w.counters().start_steps, (0..20).sum::<u64>());
    }

    #[test]
    fn equal_deadlines_fifo() {
        let mut w: HashedWheelSorted<u32> = HashedWheelSorted::new(8);
        for i in 0..6 {
            w.start_timer(TickDelta(10), i).unwrap();
        }
        let fired = w.collect_ticks(10);
        let got: Vec<u32> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn stop_and_stale_handles() {
        let mut w: HashedWheelSorted<u32> = HashedWheelSorted::new(8);
        let h = w.start_timer(TickDelta(5), 5).unwrap();
        assert_eq!(w.stop_timer(h), Ok(5));
        assert_eq!(w.stop_timer(h), Err(TimerError::Stale));
        assert!(w.collect_ticks(10).is_empty());
    }

    #[test]
    fn reduces_to_scheme2_with_table_size_one() {
        // §6.1.1: "the scheme reduces to Scheme 2 if the array size is 1".
        let mut w: HashedWheelSorted<u64> = HashedWheelSorted::new(1);
        for &j in &[5u64, 2, 9, 1] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(9);
        let got: Vec<u64> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![1, 2, 5, 9]);
    }

    #[test]
    fn zero_interval_rejected() {
        let mut w: HashedWheelSorted<()> = HashedWheelSorted::new(8);
        assert_eq!(
            w.start_timer(TickDelta::ZERO, ()),
            Err(TimerError::ZeroInterval)
        );
    }

    #[test]
    fn restart_rearms_to_a_new_deadline_with_the_same_handle() {
        let mut w: HashedWheelSorted<&str> = HashedWheelSorted::new(8);
        let h = w.start_timer(TickDelta(3), "x").unwrap();
        w.restart_timer(h, TickDelta(20)).unwrap();
        assert!(w.collect_ticks(3).is_empty());
        let fired = w.collect_ticks(17);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(20));
        assert_eq!(fired[0].handle, h);
        assert_eq!(w.counters().restarts, 1);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn restart_keeps_the_bucket_sorted() {
        let mut w: HashedWheelSorted<u64> = HashedWheelSorted::new(4);
        // All in slot 0 with different rounds; then move the farthest to
        // the middle, which must re-insert in sorted position.
        let h = w.start_timer(TickDelta(16), 16).unwrap();
        w.start_timer(TickDelta(4), 4).unwrap();
        w.start_timer(TickDelta(12), 12).unwrap();
        w.restart_timer(h, TickDelta(8)).unwrap();
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        let fired = w.collect_ticks(12);
        let got: Vec<u64> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![4, 16, 12]);
        assert_eq!(fired[1].fired_at, Tick(8));
    }

    #[test]
    fn failed_restart_leaves_the_timer_armed() {
        let mut w: HashedWheelSorted<()> = HashedWheelSorted::new(8);
        let h = w.start_timer(TickDelta(4), ()).unwrap();
        assert_eq!(
            w.restart_timer(h, TickDelta::ZERO),
            Err(TimerError::ZeroInterval)
        );
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        let fired = w.collect_ticks(4);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(4));
        assert_eq!(w.restart_timer(h, TickDelta(1)), Err(TimerError::Stale));
    }
}
