//! Scheme 6 — hash table with unsorted lists in each bucket (§6.1.2,
//! Figure 9).
//!
//! Arbitrary-sized intervals are hashed onto a fixed-size wheel: the interval
//! mod the table size picks the slot (cheap AND when the size is a power of
//! two, the paper's recommendation) and the quotient — the number of whole
//! wheel revolutions before expiry — is stored with the timer as a *rounds*
//! counter. Every visit of the cursor to a bucket decrements the rounds of
//! every element and expires those that reach zero, "exactly as in Scheme 1"
//! but confined to one bucket.
//!
//! `START_TIMER` is therefore worst-case O(1); `PER_TICK_BOOKKEEPING` does
//! `n/TableSize` work on average *regardless of the hash distribution* —
//! every `TableSize` ticks each living timer is decremented exactly once —
//! which is why the paper argues the hash only controls the burstiness
//! (variance) of the per-tick latency, not its mean. The `burstiness`
//! experiment binary demonstrates exactly that.
//!
//! # Rounds arithmetic
//!
//! For interval `j ≥ 1` and table size `N`: slot = `(cursor + j) mod N`,
//! rounds = `(j − 1) / N`. The cursor first reaches the slot after
//! `1 + ((j − 1) mod N)` ticks and then once per `N` ticks, so the visit at
//! which `rounds` has counted down to zero is tick `j` exactly (checked by
//! the oracle-equivalence property tests).

use alloc::vec::Vec;

use crate::arena::{ListHead, TimerArena};
use crate::bitmap::SlotBitmap;
use crate::counters::{OpCounters, VaxCostModel};
use crate::handle::TimerHandle;
use crate::scheme::{Expired, TimerScheme};
use crate::time::{pow2_mask, ticks_of, Tick, TickDelta};
use crate::TimerError;

/// Scheme 6: hashed timing wheel with unsorted per-bucket lists.
/// See the [module docs](self).
///
/// # Examples
///
/// ```
/// use tw_core::wheel::HashedWheelUnsorted;
/// use tw_core::{TickDelta, TimerScheme, TimerSchemeExt};
///
/// // A 256-slot wheel holding timers of any 64-bit interval.
/// let mut wheel: HashedWheelUnsorted<u32> = HashedWheelUnsorted::new(256);
/// wheel.start_timer(TickDelta(1_000_000), 1).unwrap();
/// wheel.start_timer(TickDelta(3), 2).unwrap();
/// assert_eq!(wheel.collect_ticks(3)[0].payload, 2);
/// ```
pub struct HashedWheelUnsorted<T> {
    slots: Vec<ListHead>,
    /// `Some(size - 1)` when the table size is a power of two: indexing is
    /// then a single AND, the §6.1.2 recommendation ("Obtaining the
    /// remainder after dividing by a power of 2 is cheap").
    mask: Option<u64>,
    cursor: usize,
    now: Tick,
    arena: TimerArena<T>,
    /// Two-tier slot-occupancy bitmap (zero-sized no-op without the
    /// `bitmap-cursor` feature); bit set ⇔ bucket non-empty.
    occupancy: SlotBitmap,
    counters: OpCounters,
    cost: VaxCostModel,
}

impl<T> HashedWheelUnsorted<T> {
    /// Creates a wheel with `table_size` buckets.
    ///
    /// Any size ≥ 1 works; powers of two make the modulo a single AND, which
    /// is what §6.1.2 recommends ("Obtaining the remainder after dividing by
    /// a power of 2 is cheap").
    ///
    /// # Panics
    ///
    /// Panics if `table_size` is zero.
    #[must_use]
    pub fn new(table_size: usize) -> HashedWheelUnsorted<T> {
        assert!(table_size > 0, "wheel needs at least one bucket");
        HashedWheelUnsorted {
            slots: (0..table_size).map(|_| ListHead::new()).collect(),
            mask: pow2_mask(table_size),
            cursor: 0,
            now: Tick::ZERO,
            arena: TimerArena::new(),
            occupancy: SlotBitmap::new(table_size),
            counters: OpCounters::new(),
            cost: VaxCostModel::PAPER,
        }
    }

    /// Advances the clock and cursor over `k` ticks the bitmap proved
    /// empty, with no per-slot examination (no `empty_slot_skips`, no §7
    /// 4-instruction test).
    #[cfg(feature = "bitmap-cursor")]
    fn skip_empty_ticks(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        self.now = Tick(self.now.as_u64() + k);
        self.cursor = self.now.slot_in(self.slots.len());
        self.counters.ticks += k;
    }

    /// The table size `N`.
    #[must_use]
    pub fn table_size(&self) -> usize {
        self.slots.len()
    }

    /// Slab slots ever allocated (memory high-water mark in records); see
    /// [`TimerArena::slot_count`](crate::arena::TimerArena::slot_count).
    #[must_use]
    pub fn arena_slots(&self) -> usize {
        self.arena.slot_count()
    }

    /// Number of timers currently hashed into `slot` (test/experiment
    /// introspection).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= table_size()`.
    #[must_use]
    pub fn bucket_len(&self, slot: usize) -> usize {
        self.slots[slot].len()
    }

    /// Visits every resident timer's payload (bucket order, insertion order
    /// within a bucket). Lets wrappers that embed this wheel — e.g. the
    /// message-passing wheel in `tw-concurrent` — audit resident records
    /// during invariant checking.
    pub fn for_each_resident(&self, f: &mut dyn FnMut(&T)) {
        for list in &self.slots {
            for idx in self.arena.iter(list) {
                f(&self.arena.node(idx).payload);
            }
        }
    }
}

impl<T> TimerScheme<T> for HashedWheelUnsorted<T> {
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        // `cursor ≡ now (mod N)`, so hashing the deadline lands on the same
        // slot as the paper's `(cursor + j) mod N` — and stays in the audited
        // conversion helpers.
        let slot = match self.mask {
            Some(mask) => deadline.slot_masked(mask),
            None => deadline.slot_in(self.slots.len()),
        };
        let rounds = (interval.as_u64() - 1) / ticks_of(self.slots.len());
        let (idx, handle) = self.arena.alloc(payload, deadline)?;
        {
            let node = self.arena.node_mut(idx);
            node.aux = rounds;
            node.bucket = slot;
        }
        self.arena.push_back(&mut self.slots[slot], idx);
        let ops = self.occupancy.set(slot);
        self.counters.charge_bitmap(ops);
        self.counters.starts += 1;
        self.counters.vax_instructions += self.cost.insert;
        Ok(handle)
    }

    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError> {
        let idx = self.arena.resolve(handle)?;
        let bucket = self.arena.node(idx).bucket;
        self.arena.unlink(&mut self.slots[bucket], idx);
        if self.slots[bucket].is_empty() {
            let ops = self.occupancy.clear(bucket);
            self.counters.charge_bitmap(ops);
        }
        self.counters.stops += 1;
        self.counters.vax_instructions += self.cost.delete;
        Ok(self.arena.free(idx))
    }

    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let idx = self.arena.resolve(handle)?;
        // All validation passed — from here the restart cannot fail. Unlink
        // from the current bucket; the node never touches the free list, so
        // the client's handle (and its generation) stay valid.
        let bucket = self.arena.node(idx).bucket;
        self.arena.unlink(&mut self.slots[bucket], idx);
        if self.slots[bucket].is_empty() {
            let ops = self.occupancy.clear(bucket);
            self.counters.charge_bitmap(ops);
        }
        let slot = match self.mask {
            Some(mask) => deadline.slot_masked(mask),
            None => deadline.slot_in(self.slots.len()),
        };
        let rounds = (interval.as_u64() - 1) / ticks_of(self.slots.len());
        {
            let node = self.arena.node_mut(idx);
            node.deadline = deadline;
            node.aux = rounds;
            node.bucket = slot;
        }
        self.arena.push_back(&mut self.slots[slot], idx);
        let ops = self.occupancy.set(slot);
        self.counters.charge_bitmap(ops);
        self.counters.restarts += 1;
        // Modeled as one §7 delete followed by one insert, matching the
        // unlink+relink the update actually performs.
        self.counters.vax_instructions += self.cost.delete + self.cost.insert;
        Ok(())
    }

    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>)) {
        self.cursor = (self.cursor + 1) % self.slots.len();
        self.now = self.now.next();
        self.counters.ticks += 1;
        // The §7 cost model charges 4 instructions per tick for advancing the
        // pointer and testing the slot, empty or not.
        self.counters.vax_instructions += self.cost.skip_empty;
        if self.slots[self.cursor].is_empty() {
            self.counters.empty_slot_skips += 1;
            return;
        }
        self.counters.nonempty_slot_visits += 1;
        // Walk the whole bucket, decrementing every element exactly as in
        // Scheme 1 (§6.1.2), expiring those whose rounds reach zero.
        let mut cur = self.slots[self.cursor].first();
        // tw-analyze: fact(loop_bounded, reason = "walks one hash bucket, decrementing each resident exactly as section 6.1.2 prices PER_TICK: worst case n/slots entries per visit, charged to the decrements counter")
        while let Some(idx) = cur {
            cur = self.arena.next(idx);
            self.counters.decrements += 1;
            self.counters.vax_instructions += self.cost.decrement_step;
            let rounds = self.arena.node(idx).aux;
            if rounds == 0 {
                self.arena.unlink(&mut self.slots[self.cursor], idx);
                let handle = self.arena.handle_of(idx);
                let deadline = self.arena.node(idx).deadline;
                debug_assert_eq!(deadline, self.now, "scheme 6 rounds invariant violated");
                let payload = self.arena.free(idx);
                self.counters.expiries += 1;
                self.counters.vax_instructions += self.cost.expire;
                expired(Expired {
                    handle,
                    payload,
                    deadline,
                    fired_at: self.now,
                });
            } else {
                self.arena.node_mut(idx).aux = rounds - 1;
            }
        }
        if self.slots[self.cursor].is_empty() {
            let ops = self.occupancy.clear(self.cursor);
            self.counters.charge_bitmap(ops);
        }
    }

    #[cfg(feature = "bitmap-cursor")]
    fn advance_to_with(&mut self, deadline: Tick, expired: &mut dyn FnMut(Expired<T>)) {
        // Every visit of an occupied bucket decrements its residents'
        // rounds (§6.1.2), so none may be skipped — the bitmap only jumps
        // the runs of provably empty buckets in between.
        // tw-analyze: fact(loop_bounded, reason = "each iteration either visits an occupied bucket or jumps a whole empty stretch via the occupancy bitmap; iterations are bounded by occupied-bucket visits, not elapsed ticks")
        while self.now < deadline {
            let remaining = deadline.since(self.now).as_u64();
            let probe = self.occupancy.next_occupied_delta(self.cursor);
            self.counters.charge_bitmap(1);
            let event = probe.unwrap_or(u64::MAX);
            if event > remaining {
                self.skip_empty_ticks(remaining);
                return;
            }
            self.skip_empty_ticks(event - 1);
            self.tick(expired);
        }
    }

    fn now(&self) -> Tick {
        self.now
    }

    fn outstanding(&self) -> usize {
        self.arena.len()
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        self.arena.set_capacity_limit(limit);
        true
    }

    fn name(&self) -> &'static str {
        "scheme6(hashed-unsorted)"
    }
}

impl<T> crate::validate::InvariantCheck for HashedWheelUnsorted<T> {
    /// Scheme 6 resting-state invariants: cursor congruent to the clock,
    /// slot-index congruence, *rounds consistency* — every node satisfies
    /// `deadline = now + d + rounds·N` where `d` is the number of ticks
    /// until the cursor next visits its slot (the §6.1.2 arithmetic that
    /// makes expiry land on tick `j` exactly) — intact lists, and node
    /// count equal to `outstanding`.
    fn check_invariants(&self) -> Result<(), crate::validate::InvariantViolation> {
        use crate::validate::{ticks_until_visit, InvariantViolation};
        let scheme = self.name();
        let fail = |detail: alloc::string::String| Err(InvariantViolation::new(scheme, detail));
        let n = ticks_of(self.slots.len());
        let now = self.now.as_u64();
        if let Err(detail) = self.arena.check_storage() {
            return fail(detail);
        }
        if self.cursor != self.now.slot_in(self.slots.len()) {
            return fail(alloc::format!(
                "cursor {} is not now mod table size ({now} mod {n})",
                self.cursor
            ));
        }
        let mut linked = 0usize;
        for (slot, list) in self.slots.iter().enumerate() {
            let nodes = match self.arena.check_list(list) {
                Ok(nodes) => nodes,
                Err(detail) => return fail(alloc::format!("bucket {slot}: {detail}")),
            };
            if !self.occupancy.agrees_with(slot, !nodes.is_empty()) {
                return fail(alloc::format!(
                    "occupancy bitmap disagrees with bucket {slot} (list len {} \
                     so expected occupied={})",
                    nodes.len(),
                    !nodes.is_empty()
                ));
            }
            linked += nodes.len();
            for idx in nodes {
                let node = self.arena.node(idx);
                let deadline = node.deadline.as_u64();
                if node.bucket != slot {
                    return fail(alloc::format!(
                        "node in bucket {slot} tagged bucket {}",
                        node.bucket
                    ));
                }
                if node.deadline.slot_in(self.slots.len()) != slot {
                    return fail(alloc::format!(
                        "slot-index congruence: deadline {deadline} mod {n} != slot {slot}"
                    ));
                }
                let expect = now + ticks_until_visit(now, ticks_of(slot), n) + node.aux * n;
                if deadline != expect {
                    return fail(alloc::format!(
                        "rounds inconsistency in bucket {slot}: deadline {deadline}, \
                         but rounds {} from now {now} implies {expect}",
                        node.aux
                    ));
                }
            }
        }
        if linked != self.arena.len() {
            return fail(alloc::format!(
                "{linked} nodes on lists but {} outstanding",
                self.arena.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
// Test payloads use small counters; the narrowing casts cannot truncate.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::scheme::TimerSchemeExt;

    #[test]
    fn fires_at_exact_deadline_across_rounds() {
        let mut w: HashedWheelUnsorted<u64> = HashedWheelUnsorted::new(8);
        // Intervals straddling 0, 1 and 2 full revolutions, plus exact
        // multiples of the table size (the tricky rounds boundary).
        for &j in &[1u64, 7, 8, 9, 16, 17, 24, 100] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(100);
        let got: Vec<(u64, u64)> = fired
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        assert_eq!(
            got,
            vec![
                (1, 1),
                (7, 7),
                (8, 8),
                (9, 9),
                (16, 16),
                (17, 17),
                (24, 24),
                (100, 100)
            ]
        );
        for e in &fired {
            assert_eq!(e.error(), 0);
        }
    }

    #[test]
    fn fig9_worked_example() {
        // §6.1 / Figure 9: table size 256, cursor at 10, timer whose low
        // 8 bits are 20 → slot 30, high-order bits (rounds) on that list.
        let mut w: HashedWheelUnsorted<()> = HashedWheelUnsorted::new(256);
        w.run_ticks(10); // move the cursor to element 10
        let j = (3u64 << 8) + 20; // high-order bits 3, low-order bits 20
        w.start_timer(TickDelta(j), ()).unwrap();
        assert_eq!(w.bucket_len(30), 1);
        // And it still fires at exactly now + j.
        let fired = w.collect_ticks(j);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(10 + j));
    }

    #[test]
    fn rounds_decrement_not_expiry_on_early_visits() {
        let mut w: HashedWheelUnsorted<()> = HashedWheelUnsorted::new(4);
        w.start_timer(TickDelta(9), ()).unwrap(); // slot 1, rounds 2
                                                  // Visits at ticks 1, 5 decrement; visit at 9 expires.
        assert!(w.collect_ticks(8).is_empty());
        assert_eq!(w.outstanding(), 1);
        assert_eq!(w.collect_ticks(1).len(), 1);
    }

    #[test]
    fn stop_timer_is_constant_work() {
        let mut w: HashedWheelUnsorted<u32> = HashedWheelUnsorted::new(16);
        let handles: Vec<_> = (0..100)
            .map(|i| w.start_timer(TickDelta(1000 + u64::from(i)), i).unwrap())
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(w.stop_timer(h), Ok(i as u32));
        }
        assert_eq!(w.outstanding(), 0);
        assert!(w.collect_ticks(2000).is_empty());
    }

    #[test]
    fn table_size_one_degenerates_to_scheme1_style_list() {
        // §6.1.1 notes the hashed scheme reduces to a single list when the
        // array size is 1; scheme 6 then decrements every timer every tick.
        let mut w: HashedWheelUnsorted<u64> = HashedWheelUnsorted::new(1);
        w.start_timer(TickDelta(3), 3).unwrap();
        w.start_timer(TickDelta(1), 1).unwrap();
        let fired = w.collect_ticks(3);
        let got: Vec<u64> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![1, 3]);
        // Every tick decremented every living element.
        assert!(w.counters().decrements >= 4);
    }

    #[test]
    fn per_tick_work_averages_n_over_table_size() {
        // The §6.1.2 claim: n timers are each decremented once per TableSize
        // ticks, so decrements per tick average n/TableSize regardless of
        // distribution.
        let n = 64u64;
        let table = 16u64;
        let mut w: HashedWheelUnsorted<()> = HashedWheelUnsorted::new(table as usize);
        for i in 0..n {
            // Long-lived timers spread over buckets.
            w.start_timer(TickDelta(10_000 + i), ()).unwrap();
        }
        w.reset_counters();
        w.run_ticks(table * 10); // 10 full revolutions
        let c = w.counters();
        let per_tick = c.decrements as f64 / c.ticks as f64;
        let expect = n as f64 / table as f64;
        assert!(
            (per_tick - expect).abs() < 0.01,
            "got {per_tick}, want {expect}"
        );
    }

    #[test]
    fn vax_model_matches_section7_formula() {
        // §7: average cost per tick = 4 + 15 n / TableSize when every
        // outstanding timer is decremented (and none expire) — here we use
        // long-lived timers so only the 4 + 6·n/TableSize part accrues, then
        // check the exact accounting identity instead of the headline figure.
        let mut w: HashedWheelUnsorted<()> = HashedWheelUnsorted::new(8);
        for i in 0..16u64 {
            w.start_timer(TickDelta(1_000 + i), ()).unwrap();
        }
        w.reset_counters();
        w.run_ticks(8);
        let c = w.counters();
        assert_eq!(
            c.vax_instructions,
            4 * c.ticks + 6 * c.decrements + 9 * c.expiries
        );
        assert_eq!(c.decrements, 16); // each timer decremented exactly once
    }

    #[cfg(feature = "bitmap-cursor")]
    #[test]
    fn bitmap_advance_preserves_rounds_decrements() {
        use crate::scheme::TimerScheme;
        // A multi-revolution timer: every visit of its bucket decrements
        // rounds, so the fast path must land on the bucket each revolution
        // and still fire at exactly tick j.
        let mut w: HashedWheelUnsorted<u64> = HashedWheelUnsorted::new(512);
        let j = 4 * 512 + 37;
        w.start_timer(TickDelta(j), j).unwrap();
        w.reset_counters();
        let mut fired = Vec::new();
        w.advance_to_with(Tick(j), &mut |e| {
            fired.push((e.payload, e.fired_at.as_u64()))
        });
        assert_eq!(fired, vec![(j, j)]);
        let c = w.counters();
        assert_eq!(c.ticks, j);
        assert_eq!(c.empty_slot_skips, 0);
        // 4 early visits decrement rounds, the 5th expires.
        assert_eq!(c.nonempty_slot_visits, 5);
        assert_eq!(c.decrements, 5);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn zero_interval_rejected() {
        let mut w: HashedWheelUnsorted<()> = HashedWheelUnsorted::new(8);
        assert_eq!(
            w.start_timer(TickDelta::ZERO, ()),
            Err(TimerError::ZeroInterval)
        );
    }

    #[test]
    fn adversarial_all_same_bucket_still_correct() {
        // All intervals multiples of the table size hash to one bucket; the
        // mean work is unchanged but bursty (§6.1.2) — and expiries must
        // still be exact.
        let mut w: HashedWheelUnsorted<u64> = HashedWheelUnsorted::new(8);
        for k in 1..=10u64 {
            w.start_timer(TickDelta(8 * k), k).unwrap();
        }
        assert_eq!(w.bucket_len(0), 10);
        let fired = w.collect_ticks(80);
        let got: Vec<u64> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(got, (1..=10).collect::<Vec<_>>());
        for e in &fired {
            assert_eq!(e.fired_at.as_u64(), 8 * e.payload);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _: HashedWheelUnsorted<()> = HashedWheelUnsorted::new(0);
    }

    #[test]
    fn restart_rearms_to_a_new_deadline_with_the_same_handle() {
        let mut w: HashedWheelUnsorted<&str> = HashedWheelUnsorted::new(8);
        let h = w.start_timer(TickDelta(3), "x").unwrap();
        // Move across a rounds boundary: 3 ticks away → 20 ticks away.
        w.restart_timer(h, TickDelta(20)).unwrap();
        assert!(w.collect_ticks(3).is_empty());
        let fired = w.collect_ticks(17);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(20));
        assert_eq!(fired[0].handle, h);
        assert_eq!(w.counters().restarts, 1);
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn restart_to_earlier_deadline_sheds_rounds() {
        let mut w: HashedWheelUnsorted<()> = HashedWheelUnsorted::new(4);
        // 3 rounds out, then pulled in to fire next tick.
        let h = w.start_timer(TickDelta(13), ()).unwrap();
        w.restart_timer(h, TickDelta(1)).unwrap();
        let fired = w.collect_ticks(1);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(1));
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
    }

    #[test]
    fn failed_restart_leaves_the_timer_armed() {
        let mut w: HashedWheelUnsorted<()> = HashedWheelUnsorted::new(8);
        let h = w.start_timer(TickDelta(4), ()).unwrap();
        assert_eq!(
            w.restart_timer(h, TickDelta::ZERO),
            Err(TimerError::ZeroInterval)
        );
        crate::validate::InvariantCheck::check_invariants(&w).unwrap();
        let fired = w.collect_ticks(4);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(4));
        // After firing the handle's generation is dead: restart must report
        // staleness, never relink a freed node.
        assert_eq!(w.restart_timer(h, TickDelta(1)), Err(TimerError::Stale));
    }
}
