//! Scheme 8 — the Lawn: one append-ordered FIFO bucket per distinct TTL
//! (Lev-Libfeld, "Lawn: an Unbound Low Latency Timer Data Structure",
//! PAPERS.md).
//!
//! The paper's Schemes 6–7 optimize for *arbitrary* intervals; the workload
//! that dominates session/TTL stores is the opposite — a handful of distinct
//! intervals shared by millions of timers. The Lawn exploits that skew with
//! a trivial invariant: all timers in a bucket share one TTL, and a timer
//! started later has a later (or equal) deadline, so **appending to the
//! bucket tail keeps every bucket sorted for free** and the bucket *head* is
//! always that TTL's next timer to expire.
//!
//! * `START_TIMER` — index the TTL's bucket, append to its tail: O(1), no
//!   hashing, no per-level cascade.
//! * `STOP_TIMER` / UPDATE — generational handle → arena node → unlink
//!   (+ relink for a restart): O(1).
//! * `PER_TICK_BOOKKEEPING` — inspect only the *head* of each non-empty
//!   bucket: O(distinct_ttls + expired) per tick, independent of the number
//!   of live timers. The non-empty buckets are themselves threaded on an
//!   intrusive doubly-linked "active" list, so a tick never scans the
//!   (potentially huge) array of idle TTL buckets.
//!
//! Scheme 7 pays O(levels) per start and migrates timers between levels as
//! they age; the Lawn pays nothing per start and never moves a timer — but
//! its per-tick work grows with the number of *distinct* TTLs, so it wins
//! exactly when `distinct_ttls ≪ n / levels`-ish, i.e. the million-session
//! few-TTLs regime the `lawn_scale` benchmark measures.
//!
//! # Within-bucket order is an invariant, not a sort
//!
//! For a fixed TTL `j`, a timer started (or restarted) at time `s` has
//! deadline `s + j`. Starts happen at non-decreasing `now`, so appends carry
//! non-decreasing deadlines; a restart rewrites the deadline to `now + j'`,
//! which is ≥ every deadline already in bucket `j'` (all inserted at times
//! ≤ now). The invariant checker verifies this ordering on every
//! [`Checked`](crate::validate::Checked) operation.

use alloc::vec::Vec;

use crate::arena::{ListHead, TimerArena};
use crate::counters::{OpCounters, VaxCostModel};
use crate::handle::TimerHandle;
use crate::scheme::{Expired, TimerScheme};
use crate::time::{slot_index, Tick, TickDelta};
use crate::wheel::config::OverflowPolicy;
use crate::TimerError;

/// Sentinel bucket index meaning "not on the active list".
const NONE: usize = usize::MAX;

/// Scheme 8: per-TTL append-ordered buckets ("the Lawn").
/// See the [module docs](self).
///
/// # Examples
///
/// ```
/// use tw_core::wheel::LawnWheel;
/// use tw_core::{TickDelta, TimerScheme, TimerSchemeExt};
///
/// // A lawn accepting TTLs of 1..=128 ticks.
/// let mut lawn: LawnWheel<u32> = LawnWheel::new(128);
/// lawn.start_timer(TickDelta(30), 1).unwrap();
/// lawn.start_timer(TickDelta(30), 2).unwrap();
/// lawn.start_timer(TickDelta(3), 3).unwrap();
/// assert_eq!(lawn.collect_ticks(3)[0].payload, 3);
/// // Same TTL ⇒ FIFO: 1 was started first and fires first.
/// assert_eq!(
///     lawn.collect_ticks(27).iter().map(|e| e.payload).collect::<Vec<_>>(),
///     vec![1, 2]
/// );
/// ```
pub struct LawnWheel<T> {
    /// One FIFO bucket per distinct TTL; bucket `i` holds TTL `i + 1`.
    buckets: Vec<ListHead>,
    /// Intrusive doubly-linked list threading the *non-empty* buckets, so
    /// `PER_TICK` visits exactly the distinct live TTLs and never scans the
    /// idle ones. `NONE` is the sentinel; a bucket is on the list iff it is
    /// non-empty.
    active_next: Vec<usize>,
    active_prev: Vec<usize>,
    active_head: usize,
    /// Number of buckets on the active list (= distinct live TTLs).
    active_len: usize,
    now: Tick,
    arena: TimerArena<T>,
    overflow_policy: OverflowPolicy,
    counters: OpCounters,
    cost: VaxCostModel,
}

impl<T> LawnWheel<T> {
    /// Creates a lawn accepting TTLs of `1..=max_interval` ticks, rejecting
    /// longer ones ([`OverflowPolicy::Reject`]).
    ///
    /// Memory is one bucket head per *representable* TTL (`max_interval`
    /// heads), allocated up front; timers themselves live in the shared
    /// arena. Choose `max_interval` as the largest TTL the deployment uses,
    /// not the largest imaginable.
    ///
    /// # Panics
    ///
    /// Panics if `max_interval` is zero.
    #[must_use]
    pub fn new(max_interval: usize) -> LawnWheel<T> {
        LawnWheel::build(max_interval, OverflowPolicy::Reject)
    }

    /// Shared constructor body; `WheelConfig::make_lawn` routes here after
    /// validating the policy (the lawn has no overflow list, so
    /// [`OverflowPolicy::OverflowList`] is refused at build time).
    pub(crate) fn build(max_interval: usize, overflow_policy: OverflowPolicy) -> LawnWheel<T> {
        assert!(max_interval > 0, "lawn needs at least one TTL bucket");
        LawnWheel {
            buckets: (0..max_interval).map(|_| ListHead::new()).collect(),
            active_next: alloc::vec![NONE; max_interval],
            active_prev: alloc::vec![NONE; max_interval],
            active_head: NONE,
            active_len: 0,
            now: Tick::ZERO,
            arena: TimerArena::new(),
            overflow_policy,
            counters: OpCounters::new(),
            cost: VaxCostModel::PAPER,
        }
    }

    /// The largest TTL this lawn accepts.
    #[must_use]
    pub fn max_interval(&self) -> TickDelta {
        TickDelta(crate::time::ticks_of(self.buckets.len()))
    }

    /// Number of distinct TTLs with at least one live timer — the per-tick
    /// inspection cost.
    #[must_use]
    pub fn distinct_ttls(&self) -> usize {
        self.active_len
    }

    /// Slab slots ever allocated (memory high-water mark in records); see
    /// [`TimerArena::slot_count`](crate::arena::TimerArena::slot_count).
    #[must_use]
    pub fn arena_slots(&self) -> usize {
        self.arena.slot_count()
    }

    /// Number of timers currently in the bucket for `ttl` (test/experiment
    /// introspection). Returns 0 for TTLs beyond `max_interval`.
    #[must_use]
    pub fn bucket_len(&self, ttl: TickDelta) -> usize {
        let b = slot_index(ttl.as_u64().wrapping_sub(1));
        self.buckets.get(b).map_or(0, ListHead::len)
    }

    /// Threads bucket `b` onto the active list (front push; tick order over
    /// buckets is unspecified, only within-bucket order matters).
    fn activate(&mut self, b: usize) {
        self.active_prev[b] = NONE;
        self.active_next[b] = self.active_head;
        if self.active_head != NONE {
            self.active_prev[self.active_head] = b;
        }
        self.active_head = b;
        self.active_len += 1;
    }

    /// Unthreads bucket `b` from the active list.
    fn deactivate(&mut self, b: usize) {
        let (prev, next) = (self.active_prev[b], self.active_next[b]);
        if prev == NONE {
            self.active_head = next;
        } else {
            self.active_next[prev] = next;
        }
        if next != NONE {
            self.active_prev[next] = prev;
        }
        self.active_prev[b] = NONE;
        self.active_next[b] = NONE;
        self.active_len -= 1;
    }

    /// Applies the overflow policy to an over-range interval; in-range
    /// intervals pass through untouched.
    fn admit(&self, interval: TickDelta) -> Result<TickDelta, TimerError> {
        let max = self.max_interval();
        if interval <= max {
            return Ok(interval);
        }
        match self.overflow_policy.apply(max)? {
            Some(clamped) => Ok(clamped),
            // `OverflowList` is refused at build time (the lawn has no
            // overflow list), so an over-range interval that survives
            // `apply` has nowhere to go: refuse it like `Reject` would.
            None => Err(TimerError::IntervalOutOfRange { max }),
        }
    }
}

impl<T> TimerScheme<T> for LawnWheel<T> {
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let interval = self.admit(interval)?;
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        // Bucket index = TTL - 1; `admit` bounded the TTL by the bucket
        // count, so the widening is lossless.
        let b = slot_index(interval.as_u64() - 1);
        let (idx, handle) = self.arena.alloc(payload, deadline)?;
        {
            let node = self.arena.node_mut(idx);
            node.aux = interval.as_u64();
            node.bucket = b;
        }
        let was_empty = self.buckets[b].is_empty();
        self.arena.push_back(&mut self.buckets[b], idx);
        if was_empty {
            self.activate(b);
        }
        self.counters.starts += 1;
        self.counters.vax_instructions += self.cost.insert;
        Ok(handle)
    }

    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError> {
        let idx = self.arena.resolve(handle)?;
        let b = self.arena.node(idx).bucket;
        self.arena.unlink(&mut self.buckets[b], idx);
        if self.buckets[b].is_empty() {
            self.deactivate(b);
        }
        self.counters.stops += 1;
        self.counters.vax_instructions += self.cost.delete;
        Ok(self.arena.free(idx))
    }

    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let interval = self.admit(interval)?;
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let idx = self.arena.resolve(handle)?;
        // All validation passed — from here the restart cannot fail. Pure
        // unlink + relink: the node never touches the free list, so the
        // client's handle (and its generation) stay valid. The new deadline
        // `now + interval` is ≥ every deadline already in the target bucket
        // (all appended at times ≤ now), so the tail append preserves the
        // sorted-by-construction invariant.
        let old = self.arena.node(idx).bucket;
        self.arena.unlink(&mut self.buckets[old], idx);
        if self.buckets[old].is_empty() {
            self.deactivate(old);
        }
        let b = slot_index(interval.as_u64() - 1);
        {
            let node = self.arena.node_mut(idx);
            node.deadline = deadline;
            node.aux = interval.as_u64();
            node.bucket = b;
        }
        let was_empty = self.buckets[b].is_empty();
        self.arena.push_back(&mut self.buckets[b], idx);
        if was_empty {
            self.activate(b);
        }
        self.counters.restarts += 1;
        // Modeled as one §7 delete followed by one insert, matching the
        // unlink+relink the update actually performs.
        self.counters.vax_instructions += self.cost.delete + self.cost.insert;
        Ok(())
    }

    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>)) {
        self.now = self.now.next();
        self.counters.ticks += 1;
        // §7-style fixed overhead for advancing the clock, empty or not.
        self.counters.vax_instructions += self.cost.skip_empty;
        if self.active_head == NONE {
            self.counters.empty_slot_skips += 1;
            return;
        }
        let mut b = self.active_head;
        // tw-analyze: fact(loop_bounded, reason = "walks the active-bucket list: one iteration per distinct live TTL, never per timer — the Lawn's O(distinct_ttls + expired) PER_TICK contract; each visit is charged to nonempty_slot_visits")
        while b != NONE {
            // Grab the successor first: expiring this bucket's last timer
            // unthreads it from the active list.
            let next_bucket = self.active_next[b];
            self.counters.nonempty_slot_visits += 1;
            // Not a `while let`: the head probe and the due check break at
            // different points, and the fact below must sit on the loop line.
            #[allow(clippy::while_let_loop)]
            // tw-analyze: fact(loop_bounded, reason = "pops due heads only: within a bucket deadlines are non-decreasing by construction, so the loop runs once per expired timer plus one final head inspection, charged to decrements")
            loop {
                // tw-analyze: fact(slot_bounded, reason = "b walks the active list; activate() only ever threads bucket indices derived from slot_index(ttl - 1) at start/restart, all < buckets.len()")
                let Some(idx) = self.buckets[b].first() else {
                    break;
                };
                self.counters.decrements += 1;
                self.counters.vax_instructions += self.cost.decrement_step;
                if self.arena.node(idx).deadline != self.now {
                    debug_assert!(
                        self.arena.node(idx).deadline > self.now,
                        "scheme 8 head deadline behind the clock"
                    );
                    break;
                }
                // tw-analyze: fact(slot_bounded, reason = "same active-list bucket index as the head probe above")
                self.arena.unlink(&mut self.buckets[b], idx);
                let handle = self.arena.handle_of(idx);
                let deadline = self.arena.node(idx).deadline;
                let payload = self.arena.free(idx);
                self.counters.expiries += 1;
                self.counters.vax_instructions += self.cost.expire;
                expired(Expired {
                    handle,
                    payload,
                    deadline,
                    fired_at: self.now,
                });
            }
            // tw-analyze: fact(slot_bounded, reason = "same active-list bucket index as the head probe above")
            if self.buckets[b].is_empty() {
                self.deactivate(b);
            }
            b = next_bucket;
        }
    }

    fn advance_to_with(&mut self, deadline: Tick, expired: &mut dyn FnMut(Expired<T>)) {
        // Event-driven fast path (no feature gate: the active list is the
        // lawn's native index). Each round scans the O(distinct_ttls) bucket
        // heads for the earliest pending deadline and jumps the clock
        // straight to it — idle ticks cost nothing, which is what makes the
        // lawn drainable at the million-timer scale.
        // tw-analyze: fact(loop_bounded, reason = "each round either fires at least one timer at the jumped-to tick (every tick() at a minimum-head deadline expires that head) or returns at the target, so rounds ≤ expired + 1")
        while self.now < deadline {
            let mut earliest = None;
            let mut b = self.active_head;
            // tw-analyze: fact(loop_bounded, reason = "scans one head per distinct live TTL on the active-bucket list, the same O(distinct_ttls) walk tick() performs")
            while b != NONE {
                // tw-analyze: fact(slot_bounded, reason = "b walks the active list; activate() only ever threads bucket indices derived from slot_index(ttl - 1) at start/restart, all < buckets.len()")
                if let Some(idx) = self.buckets[b].first() {
                    let d = self.arena.node(idx).deadline;
                    self.counters.decrements += 1;
                    self.counters.vax_instructions += self.cost.decrement_step;
                    if earliest.map_or(true, |e| d < e) {
                        earliest = Some(d);
                    }
                }
                b = self.active_next[b];
            }
            match earliest {
                Some(d) if d <= deadline => {
                    // Jump to the tick before the event, then take a real
                    // tick so the expiry bookkeeping stays in one place.
                    let gap = d.since(self.now).as_u64() - 1;
                    self.counters.ticks += gap;
                    self.now = Tick(self.now.as_u64() + gap);
                    self.tick(expired);
                }
                _ => {
                    // Nothing due inside the window: absorb the idle ticks.
                    self.counters.ticks += deadline.since(self.now).as_u64();
                    self.now = deadline;
                    return;
                }
            }
        }
    }

    fn now(&self) -> Tick {
        self.now
    }

    fn outstanding(&self) -> usize {
        self.arena.len()
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        self.arena.set_capacity_limit(limit);
        true
    }

    fn name(&self) -> &'static str {
        "scheme8(lawn)"
    }
}

impl<T> crate::validate::InvariantCheck for LawnWheel<T> {
    /// Scheme 8 resting-state invariants: per-bucket list integrity; every
    /// resident tagged with its bucket and carrying `aux = TTL = bucket + 1`;
    /// within-bucket deadlines non-decreasing (the sorted-by-construction
    /// argument) and strictly in the future, with
    /// `now < deadline ≤ now + TTL`; the active list threading exactly the
    /// non-empty buckets with consistent prev/next links; and the linked
    /// population equal to `outstanding`.
    fn check_invariants(&self) -> Result<(), crate::validate::InvariantViolation> {
        use crate::validate::InvariantViolation;
        let scheme = self.name();
        let fail = |detail: alloc::string::String| Err(InvariantViolation::new(scheme, detail));
        if let Err(detail) = self.arena.check_storage() {
            return fail(detail);
        }
        let now = self.now.as_u64();
        let mut linked = 0usize;
        let mut nonempty = 0usize;
        for (b, list) in self.buckets.iter().enumerate() {
            let nodes = match self.arena.check_list(list) {
                Ok(nodes) => nodes,
                Err(detail) => return fail(alloc::format!("bucket {b}: {detail}")),
            };
            let ttl = crate::time::ticks_of(b) + 1;
            let on_list = self.active_prev[b] != NONE || self.active_head == b;
            if nodes.is_empty() == on_list {
                return fail(alloc::format!(
                    "bucket {b} (len {}) active-list membership is {on_list}",
                    nodes.len()
                ));
            }
            if !nodes.is_empty() {
                nonempty += 1;
            }
            linked += nodes.len();
            let mut prev_deadline = 0u64;
            for idx in nodes {
                let node = self.arena.node(idx);
                let deadline = node.deadline.as_u64();
                if node.bucket != b {
                    return fail(alloc::format!(
                        "node in bucket {b} tagged bucket {}",
                        node.bucket
                    ));
                }
                if node.aux != ttl {
                    return fail(alloc::format!(
                        "node in bucket {b} carries TTL {} (want {ttl})",
                        node.aux
                    ));
                }
                if deadline <= now || deadline > now + ttl {
                    return fail(alloc::format!(
                        "bucket {b}: deadline {deadline} outside (now {now}, now + {ttl}]"
                    ));
                }
                if deadline < prev_deadline {
                    return fail(alloc::format!(
                        "bucket {b} deadlines out of order: {deadline} after {prev_deadline}"
                    ));
                }
                prev_deadline = deadline;
            }
        }
        if nonempty != self.active_len {
            return fail(alloc::format!(
                "{nonempty} non-empty buckets but active_len {}",
                self.active_len
            ));
        }
        // Walk the active list forward, checking link symmetry and that it
        // reaches exactly the non-empty buckets.
        let mut seen = 0usize;
        let mut b = self.active_head;
        let mut prev = NONE;
        while b != NONE {
            seen += 1;
            if seen > self.active_len {
                return fail(alloc::string::String::from(
                    "active list longer than active_len (cycle?)",
                ));
            }
            if self.active_prev[b] != prev {
                return fail(alloc::format!(
                    "active list prev link of bucket {b} is {} (want {prev})",
                    self.active_prev[b]
                ));
            }
            // tw-analyze: fact(slot_bounded, reason = "b walks the active list under check; membership of every link in 0..buckets.len() is exactly what this sweep verifies, failing softly on breakage")
            if self.buckets[b].is_empty() {
                return fail(alloc::format!("empty bucket {b} on the active list"));
            }
            prev = b;
            b = self.active_next[b];
        }
        if seen != self.active_len {
            return fail(alloc::format!(
                "active list reaches {seen} buckets but active_len is {}",
                self.active_len
            ));
        }
        if linked != self.arena.len() {
            return fail(alloc::format!(
                "{linked} nodes on lists but {} outstanding",
                self.arena.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
// Test payloads use small counters; the narrowing casts cannot truncate.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::scheme::TimerSchemeExt;
    use crate::validate::{Checked, InvariantCheck};

    #[test]
    fn fires_at_exact_deadline_across_ttls() {
        let mut w: LawnWheel<u64> = LawnWheel::new(128);
        for &j in &[1u64, 2, 7, 30, 30, 100, 128] {
            w.start_timer(TickDelta(j), j).unwrap();
        }
        let fired = w.collect_ticks(128);
        for e in &fired {
            assert_eq!(e.fired_at.as_u64(), e.payload, "TTL {} misfired", e.payload);
            assert_eq!(e.error(), 0);
        }
        assert_eq!(fired.len(), 7);
        w.check_invariants().unwrap();
    }

    #[test]
    fn same_ttl_fires_in_start_order() {
        let mut w: LawnWheel<u32> = LawnWheel::new(16);
        w.start_timer(TickDelta(5), 1).unwrap();
        w.run_ticks(1);
        w.start_timer(TickDelta(5), 2).unwrap();
        w.run_ticks(1);
        w.start_timer(TickDelta(5), 3).unwrap();
        let fired = w.collect_ticks(10);
        let got: Vec<(u32, u64)> = fired
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        assert_eq!(got, vec![(1, 5), (2, 6), (3, 7)]);
    }

    #[test]
    fn per_tick_work_tracks_distinct_ttls_not_population() {
        // 1000 timers over 4 distinct TTLs: a tick inspects 4 heads, not
        // 1000 timers — the Lawn's whole reason to exist.
        let mut w: LawnWheel<()> = LawnWheel::new(64);
        for i in 0..1000u64 {
            let ttl = [10u64, 20, 30, 40][usize::try_from(i % 4).unwrap()];
            w.start_timer(TickDelta(ttl), ()).unwrap();
        }
        assert_eq!(w.distinct_ttls(), 4);
        w.reset_counters();
        w.run_ticks(5); // before anything is due
        let c = w.counters();
        assert_eq!(c.expiries, 0);
        assert_eq!(c.nonempty_slot_visits, 4 * 5);
        assert_eq!(c.decrements, 4 * 5, "one head inspection per live TTL");
    }

    #[test]
    fn stop_timer_is_constant_work_and_deactivates_buckets() {
        let mut w: LawnWheel<u32> = LawnWheel::new(256);
        let handles: Vec<_> = (0..100)
            .map(|i| w.start_timer(TickDelta(200), i).unwrap())
            .collect();
        assert_eq!(w.distinct_ttls(), 1);
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(w.stop_timer(h), Ok(i as u32));
        }
        assert_eq!(w.distinct_ttls(), 0);
        assert_eq!(w.outstanding(), 0);
        assert!(w.collect_ticks(300).is_empty());
        w.check_invariants().unwrap();
    }

    #[test]
    fn restart_rearms_to_a_new_ttl_with_the_same_handle() {
        let mut w: LawnWheel<&str> = LawnWheel::new(64);
        let h = w.start_timer(TickDelta(3), "x").unwrap();
        w.restart_timer(h, TickDelta(20)).unwrap();
        assert!(w.collect_ticks(3).is_empty());
        let fired = w.collect_ticks(17);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(20));
        assert_eq!(fired[0].handle, h);
        assert_eq!(w.counters().restarts, 1);
        w.check_invariants().unwrap();
    }

    #[test]
    fn restart_to_earlier_deadline_crosses_buckets() {
        let mut w: LawnWheel<()> = LawnWheel::new(64);
        let h = w.start_timer(TickDelta(50), ()).unwrap();
        w.restart_timer(h, TickDelta(1)).unwrap();
        assert_eq!(w.bucket_len(TickDelta(50)), 0);
        assert_eq!(w.bucket_len(TickDelta(1)), 1);
        let fired = w.collect_ticks(1);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(1));
        w.check_invariants().unwrap();
    }

    #[test]
    fn failed_restart_leaves_the_timer_armed() {
        let mut w: LawnWheel<()> = LawnWheel::new(8);
        let h = w.start_timer(TickDelta(4), ()).unwrap();
        assert_eq!(
            w.restart_timer(h, TickDelta::ZERO),
            Err(TimerError::ZeroInterval)
        );
        assert_eq!(
            w.restart_timer(h, TickDelta(9)),
            Err(TimerError::IntervalOutOfRange { max: TickDelta(8) })
        );
        w.check_invariants().unwrap();
        let fired = w.collect_ticks(4);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(4));
        // After firing the handle's generation is dead: restart must report
        // staleness, never relink a freed node.
        assert_eq!(w.restart_timer(h, TickDelta(1)), Err(TimerError::Stale));
    }

    #[test]
    fn zero_and_overrange_intervals_rejected() {
        let mut w: LawnWheel<()> = LawnWheel::new(8);
        assert_eq!(
            w.start_timer(TickDelta::ZERO, ()),
            Err(TimerError::ZeroInterval)
        );
        assert_eq!(
            w.start_timer(TickDelta(9), ()),
            Err(TimerError::IntervalOutOfRange { max: TickDelta(8) })
        );
    }

    #[test]
    fn cap_policy_clamps_overrange_ttls() {
        let mut w: LawnWheel<()> = LawnWheel::build(8, OverflowPolicy::Cap);
        w.start_timer(TickDelta(1_000_000), ()).unwrap();
        assert_eq!(w.bucket_len(TickDelta(8)), 1);
        let fired = w.collect_ticks(8);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired_at, Tick(8));
    }

    #[test]
    fn full_arena_rejects_cleanly_and_recovers_after_stop() {
        // The scheme-level face of the TimerArena::alloc bugfix: at the
        // capacity limit START degrades to TimerError::Exhausted and
        // recovers as soon as a record frees.
        let mut w: LawnWheel<u32> = LawnWheel::new(16);
        w.set_arena_capacity(2);
        let h1 = w.start_timer(TickDelta(5), 1).unwrap();
        let _h2 = w.start_timer(TickDelta(5), 2).unwrap();
        assert_eq!(w.start_timer(TickDelta(5), 3), Err(TimerError::Exhausted));
        assert_eq!(w.outstanding(), 2);
        // A failed start must not perturb the structure.
        w.check_invariants().unwrap();
        assert_eq!(w.stop_timer(h1), Ok(1));
        let h4 = w.start_timer(TickDelta(5), 4).unwrap();
        assert_eq!(w.outstanding(), 2);
        // The stale handle stays dead even though its slot was recycled.
        assert_eq!(w.stop_timer(h1), Err(TimerError::Stale));
        // Expiry also frees capacity.
        let fired = w.collect_ticks(5);
        assert_eq!(fired.len(), 2);
        assert!(fired.iter().any(|e| e.handle == h4));
        w.start_timer(TickDelta(5), 5).unwrap();
        w.check_invariants().unwrap();
    }

    #[test]
    fn advance_jumps_idle_stretches_without_head_scans_per_tick() {
        let mut w: LawnWheel<u64> = LawnWheel::new(100_000);
        w.start_timer(TickDelta(90_000), 1).unwrap();
        w.start_timer(TickDelta(90_000), 2).unwrap();
        w.reset_counters();
        let mut fired = Vec::new();
        w.advance_to_with(Tick(100_000), &mut |e| fired.push(e.payload));
        assert_eq!(fired, vec![1, 2]);
        let c = w.counters();
        assert_eq!(c.ticks, 100_000, "clock accounts for every elapsed tick");
        // Two rounds (one firing, one final idle stretch): head scans stay
        // O(rounds · distinct_ttls), nowhere near 100k.
        assert!(c.decrements < 20, "got {} head inspections", c.decrements);
        assert_eq!(w.now(), Tick(100_000));
        w.check_invariants().unwrap();
    }

    #[test]
    fn slot_count_plateaus_under_churn() {
        let mut w: LawnWheel<()> = LawnWheel::new(8);
        for _ in 0..10_000u32 {
            w.start_timer(TickDelta(2), ()).unwrap();
            w.run_ticks(2);
        }
        assert!(
            w.arena_slots() <= 2,
            "churn leaked slots: {}",
            w.arena_slots()
        );
    }

    #[test]
    fn checked_lawn_revalidates_after_every_operation() {
        // Loom-free smoke test: the Checked harness re-runs the full
        // invariant sweep after each mutating call.
        let mut w: Checked<LawnWheel<u32>> = Checked::new(LawnWheel::new(32));
        let h = w.start_timer(TickDelta(7), 1).unwrap();
        w.start_timer(TickDelta(7), 2).unwrap();
        w.start_timer(TickDelta(3), 3).unwrap();
        w.restart_timer(h, TickDelta(12)).unwrap();
        assert_eq!(w.collect_ticks(3).len(), 1);
        assert_eq!(w.collect_ticks(9).len(), 2);
        assert_eq!(w.outstanding(), 0);
    }
}
