//! The timing-wheel schemes — the paper's contribution (§5–§6.2).
//!
//! * [`BasicWheel`] — Scheme 4: O(1) everything for bounded intervals.
//! * [`HashedWheelSorted`] — Scheme 5: hashing + sorted buckets.
//! * [`HashedWheelUnsorted`] — Scheme 6: hashing + unsorted buckets (the
//!   paper's recommendation, alongside Scheme 7, for a general facility).
//! * [`HierarchicalWheel`] — Scheme 7: wheels of increasing granularity.
//! * [`ClockworkWheel`] — Scheme 7 again, but driven by literal per-level
//!   update timers exactly as the §6.2 prose describes.
//! * [`HybridWheel`] — the §5 strawman: a bounded wheel backed by a Scheme 2
//!   ordered list for far timers.
//! * [`LawnWheel`] — Scheme 8 (beyond the paper): per-TTL append-ordered
//!   buckets for the few-distinct-TTLs, millions-of-timers regime.

pub mod basic;
pub mod clockwork;
pub mod config;
pub mod hashed_sorted;
pub mod hashed_unsorted;
pub mod hierarchical;
pub mod hybrid;
pub mod lawn;

pub use basic::BasicWheel;
pub use clockwork::ClockworkWheel;
pub use config::{LevelSizes, MigrationPolicy, OverflowPolicy, WheelConfig};
pub use hashed_sorted::HashedWheelSorted;
pub use hashed_unsorted::HashedWheelUnsorted;
pub use hierarchical::{HierarchicalWheel, InsertRule};
pub use hybrid::HybridWheel;
pub use lawn::LawnWheel;
