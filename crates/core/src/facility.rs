//! The paper-exact client interface: `START_TIMER(Interval, Request_ID,
//! Expiry_Action)` / `STOP_TIMER(Request_ID)` / `PER_TICK_BOOKKEEPING` /
//! `EXPIRY_PROCESSING`.
//!
//! [`TimerFacility`] adapts any [`TimerScheme`] to the §2 signatures: it
//! maintains the `Request_ID` → handle mapping (so clients stop timers by id,
//! as in the paper) and performs the client-specified [`ExpiryAction`] when a
//! timer fires — "calling a client-specified routine, or setting an event
//! flag" (§2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::handle::{RequestId, TimerHandle};
use crate::scheme::{Expired, TimerScheme};
use crate::time::{Tick, TickDelta};
use crate::TimerError;

/// What to do when a timer expires (§2's `Expiry_Action`).
pub enum ExpiryAction {
    /// Call a client-specified routine with the request id and firing info.
    Callback(Box<dyn FnMut(RequestId, Expired<()>) + Send>),
    /// Set an event flag the client polls.
    SetFlag(Arc<AtomicBool>),
    /// Do nothing beyond recording the expiry (useful in experiments).
    Nop,
}

impl std::fmt::Debug for ExpiryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpiryAction::Callback(_) => f.write_str("ExpiryAction::Callback(..)"),
            ExpiryAction::SetFlag(flag) => f
                .debug_tuple("ExpiryAction::SetFlag")
                .field(&flag.load(Ordering::Relaxed))
                .finish(),
            ExpiryAction::Nop => f.write_str("ExpiryAction::Nop"),
        }
    }
}

/// A record of one expiry performed by `PER_TICK_BOOKKEEPING`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpiryRecord {
    /// The client's request id.
    pub request_id: RequestId,
    /// Scheduled deadline.
    pub deadline: Tick,
    /// Actual firing tick.
    pub fired_at: Tick,
}

/// The §2 timer module: a [`TimerScheme`] plus the `Request_ID` bookkeeping
/// and expiry-action dispatch.
///
/// # Examples
///
/// ```
/// use tw_core::facility::{ExpiryAction, TimerFacility};
/// use tw_core::wheel::BasicWheel;
/// use tw_core::{RequestId, TickDelta};
///
/// let mut module = TimerFacility::new(BasicWheel::new(256));
/// module
///     .start_timer(TickDelta(3), RequestId(1), ExpiryAction::Nop)
///     .unwrap();
/// let mut fired = Vec::new();
/// for _ in 0..3 {
///     fired.extend(module.per_tick_bookkeeping());
/// }
/// assert_eq!(fired.len(), 1);
/// assert_eq!(fired[0].request_id, RequestId(1));
/// ```
pub struct TimerFacility<S> {
    scheme: S,
    by_request: HashMap<RequestId, TimerHandle>,
    /// Re-arm intervals for periodic timers (§1's "periodic checking"
    /// class — "such timers always expire").
    periods: HashMap<RequestId, TickDelta>,
}

impl<S: TimerScheme<(RequestId, ExpiryAction)>> TimerFacility<S> {
    /// Wraps a scheme in the paper's client interface.
    pub fn new(scheme: S) -> TimerFacility<S> {
        TimerFacility {
            scheme,
            by_request: HashMap::new(),
            periods: HashMap::new(),
        }
    }

    /// `START_TIMER(Interval, Request_ID, Expiry_Action)` (§2).
    ///
    /// # Errors
    ///
    /// * [`TimerError::DuplicateRequestId`] if `request_id` already has an
    ///   outstanding timer.
    /// * Any error of the underlying scheme's
    ///   [`start_timer`](TimerScheme::start_timer).
    pub fn start_timer(
        &mut self,
        interval: TickDelta,
        request_id: RequestId,
        action: ExpiryAction,
    ) -> Result<(), TimerError> {
        if self.by_request.contains_key(&request_id) {
            return Err(TimerError::DuplicateRequestId);
        }
        let handle = self.scheme.start_timer(interval, (request_id, action))?;
        self.by_request.insert(request_id, handle);
        Ok(())
    }

    /// Starts a *periodic* timer: after each expiry the facility re-arms it
    /// for another `period`, until `STOP_TIMER` is called.
    ///
    /// This is the §1 failure-recovery pattern ("some [failures] can be
    /// detected by periodic checking (e.g. memory corruption) and such
    /// timers always expire"); the paper's module interface leaves re-arming
    /// to the client, but every deployed facility grows this convenience.
    /// Each firing is exact: the k-th expiry lands at `start + k·period`.
    ///
    /// # Errors
    ///
    /// Same as [`start_timer`](Self::start_timer).
    pub fn start_periodic(
        &mut self,
        period: TickDelta,
        request_id: RequestId,
        action: ExpiryAction,
    ) -> Result<(), TimerError> {
        self.start_timer(period, request_id, action)?;
        self.periods.insert(request_id, period);
        Ok(())
    }

    /// `STOP_TIMER(Request_ID)` (§2). Stops one-shot and periodic timers
    /// alike.
    ///
    /// # Errors
    ///
    /// [`TimerError::UnknownRequestId`] if no timer is outstanding under
    /// `request_id`.
    pub fn stop_timer(&mut self, request_id: RequestId) -> Result<(), TimerError> {
        self.periods.remove(&request_id);
        let handle = self
            .by_request
            .remove(&request_id)
            .ok_or(TimerError::UnknownRequestId)?;
        // The map entry existing implies the handle is live: expiries remove
        // their entries and stop removes them above. Propagate rather than
        // panic if the maps ever drift out of sync.
        self.scheme.stop_timer(handle)?;
        Ok(())
    }

    /// UPDATE: re-arms `request_id`'s outstanding timer to expire `interval`
    /// ticks from now, keeping its id, handle, and expiry action. For a
    /// periodic timer only the in-flight deadline moves; the period is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// * [`TimerError::UnknownRequestId`] if no timer is outstanding under
    ///   `request_id`.
    /// * Any error of the underlying scheme's
    ///   [`restart_timer`](TimerScheme::restart_timer); the timer stays
    ///   armed at its original deadline in that case.
    pub fn restart_timer(
        &mut self,
        request_id: RequestId,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        let handle = self
            .by_request
            .get(&request_id)
            .copied()
            .ok_or(TimerError::UnknownRequestId)?;
        self.scheme.restart_timer(handle, interval)
    }

    /// `PER_TICK_BOOKKEEPING` (§2): advances the clock one tick, performs
    /// every due timer's `Expiry_Action`, and returns their records.
    pub fn per_tick_bookkeeping(&mut self) -> Vec<ExpiryRecord> {
        let mut records = Vec::new();
        let mut rearm = Vec::new();
        let by_request = &mut self.by_request;
        let periods = &self.periods;
        self.scheme
            .tick(&mut |expired: Expired<(RequestId, ExpiryAction)>| {
                let (request_id, mut action) = expired.payload;
                by_request.remove(&request_id);
                let info = Expired {
                    handle: expired.handle,
                    payload: (),
                    deadline: expired.deadline,
                    fired_at: expired.fired_at,
                };
                match &mut action {
                    ExpiryAction::Callback(f) => f(request_id, info),
                    ExpiryAction::SetFlag(flag) => flag.store(true, Ordering::Release),
                    ExpiryAction::Nop => {}
                }
                // tw-analyze: allow(TW004, reason = "the facility facade returns the tick's expiry batch as a Vec by API contract; the measured per-tick path is the schemes' tick(), which stays allocation-free")
                records.push(ExpiryRecord {
                    request_id,
                    deadline: expired.deadline,
                    fired_at: expired.fired_at,
                });
                if let Some(&period) = periods.get(&request_id) {
                    // Re-arm after the tick completes (the scheme is borrowed
                    // inside this callback).
                    // tw-analyze: allow(TW004, reason = "periodic re-arms are deferred to after the scheme borrow ends; the scratch Vec is facade bookkeeping, bounded by the tick's expiry count, not scheme per-tick work")
                    rearm.push((request_id, period, action));
                }
            });
        for (request_id, period, action) in rearm {
            // A period the scheme accepted once is accepted again — except
            // when the clock has run so far that `now + period` no longer
            // fits the tick domain. Retire the timer instead of panicking.
            match self.scheme.start_timer(period, (request_id, action)) {
                Ok(handle) => {
                    self.by_request.insert(request_id, handle);
                }
                Err(TimerError::DeadlineOverflow) => {
                    self.periods.remove(&request_id);
                }
                Err(other) => {
                    debug_assert!(false, "periodic re-arm rejected: {other}");
                    self.periods.remove(&request_id);
                }
            }
        }
        records
    }

    /// The current absolute time.
    pub fn now(&self) -> Tick {
        self.scheme.now()
    }

    /// Number of outstanding timers.
    pub fn outstanding(&self) -> usize {
        self.scheme.outstanding()
    }

    /// Returns `true` if `request_id` has an outstanding timer.
    pub fn is_outstanding(&self, request_id: RequestId) -> bool {
        self.by_request.contains_key(&request_id)
    }

    /// Borrows the underlying scheme (e.g. to read its counters).
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Mutably borrows the underlying scheme.
    pub fn scheme_mut(&mut self) -> &mut S {
        &mut self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wheel::BasicWheel;

    fn facility() -> TimerFacility<BasicWheel<(RequestId, ExpiryAction)>> {
        TimerFacility::new(BasicWheel::new(64))
    }

    #[test]
    fn start_tick_expire_flow() {
        let mut m = facility();
        m.start_timer(TickDelta(2), RequestId(7), ExpiryAction::Nop)
            .unwrap();
        assert!(m.is_outstanding(RequestId(7)));
        assert!(m.per_tick_bookkeeping().is_empty());
        let fired = m.per_tick_bookkeeping();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].request_id, RequestId(7));
        assert_eq!(fired[0].deadline, Tick(2));
        assert_eq!(fired[0].fired_at, Tick(2));
        assert!(!m.is_outstanding(RequestId(7)));
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn duplicate_request_id_rejected() {
        let mut m = facility();
        m.start_timer(TickDelta(5), RequestId(1), ExpiryAction::Nop)
            .unwrap();
        assert_eq!(
            m.start_timer(TickDelta(5), RequestId(1), ExpiryAction::Nop),
            Err(TimerError::DuplicateRequestId)
        );
        // After stopping, the id can be reused.
        m.stop_timer(RequestId(1)).unwrap();
        m.start_timer(TickDelta(5), RequestId(1), ExpiryAction::Nop)
            .unwrap();
    }

    #[test]
    fn stop_unknown_id_fails() {
        let mut m = facility();
        assert_eq!(
            m.stop_timer(RequestId(9)),
            Err(TimerError::UnknownRequestId)
        );
    }

    #[test]
    fn stop_prevents_expiry() {
        let mut m = facility();
        m.start_timer(TickDelta(2), RequestId(1), ExpiryAction::Nop)
            .unwrap();
        m.stop_timer(RequestId(1)).unwrap();
        for _ in 0..5 {
            assert!(m.per_tick_bookkeeping().is_empty());
        }
    }

    #[test]
    fn set_flag_action_sets_flag() {
        let mut m = facility();
        let flag = Arc::new(AtomicBool::new(false));
        m.start_timer(
            TickDelta(1),
            RequestId(1),
            ExpiryAction::SetFlag(Arc::clone(&flag)),
        )
        .unwrap();
        m.per_tick_bookkeeping();
        assert!(flag.load(Ordering::Acquire));
    }

    #[test]
    fn callback_action_runs_with_request_id() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let mut m = facility();
        m.start_timer(
            TickDelta(3),
            RequestId(42),
            ExpiryAction::Callback(Box::new(move |rid, info| {
                seen2.lock().unwrap().push((rid.0, info.fired_at.as_u64()));
            })),
        )
        .unwrap();
        for _ in 0..3 {
            m.per_tick_bookkeeping();
        }
        assert_eq!(seen.lock().unwrap().as_slice(), &[(42, 3)]);
    }

    #[test]
    fn expiry_frees_request_id_for_reuse() {
        let mut m = facility();
        m.start_timer(TickDelta(1), RequestId(1), ExpiryAction::Nop)
            .unwrap();
        m.per_tick_bookkeeping();
        m.start_timer(TickDelta(1), RequestId(1), ExpiryAction::Nop)
            .unwrap();
        assert_eq!(m.outstanding(), 1);
    }

    #[test]
    fn periodic_fires_at_exact_multiples() {
        let mut m = facility();
        m.start_periodic(TickDelta(5), RequestId(1), ExpiryAction::Nop)
            .unwrap();
        let mut fired = Vec::new();
        for _ in 0..23 {
            fired.extend(m.per_tick_bookkeeping());
        }
        let at: Vec<u64> = fired.iter().map(|r| r.fired_at.as_u64()).collect();
        assert_eq!(at, vec![5, 10, 15, 20]);
        for r in &fired {
            assert_eq!(r.deadline, r.fired_at);
        }
        assert!(m.is_outstanding(RequestId(1)), "still armed");
    }

    #[test]
    fn periodic_stops_cleanly() {
        let mut m = facility();
        m.start_periodic(TickDelta(3), RequestId(9), ExpiryAction::Nop)
            .unwrap();
        for _ in 0..7 {
            m.per_tick_bookkeeping();
        }
        m.stop_timer(RequestId(9)).unwrap();
        for _ in 0..10 {
            assert!(m.per_tick_bookkeeping().is_empty());
        }
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn periodic_callback_runs_every_cycle() {
        use std::sync::Mutex;
        let hits: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let hits2 = Arc::clone(&hits);
        let mut m = facility();
        m.start_periodic(
            TickDelta(4),
            RequestId(2),
            ExpiryAction::Callback(Box::new(move |_, info| {
                hits2.lock().unwrap().push(info.fired_at.as_u64());
            })),
        )
        .unwrap();
        for _ in 0..12 {
            m.per_tick_bookkeeping();
        }
        assert_eq!(hits.lock().unwrap().as_slice(), &[4, 8, 12]);
    }

    #[test]
    fn restart_moves_the_deadline_keeping_the_request_id() {
        let mut m = facility();
        m.start_timer(TickDelta(3), RequestId(7), ExpiryAction::Nop)
            .unwrap();
        m.restart_timer(RequestId(7), TickDelta(6)).unwrap();
        for _ in 0..3 {
            assert!(m.per_tick_bookkeeping().is_empty());
        }
        let mut fired = Vec::new();
        for _ in 0..3 {
            fired.extend(m.per_tick_bookkeeping());
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].request_id, RequestId(7));
        assert_eq!(fired[0].fired_at, Tick(6));
        assert!(!m.is_outstanding(RequestId(7)));
    }

    #[test]
    fn restart_unknown_or_fired_id_fails_without_side_effects() {
        let mut m = facility();
        assert_eq!(
            m.restart_timer(RequestId(9), TickDelta(2)),
            Err(TimerError::UnknownRequestId)
        );
        m.start_timer(TickDelta(1), RequestId(9), ExpiryAction::Nop)
            .unwrap();
        m.per_tick_bookkeeping();
        assert_eq!(
            m.restart_timer(RequestId(9), TickDelta(2)),
            Err(TimerError::UnknownRequestId)
        );
        // A failed scheme-level restart leaves the map and timer intact.
        m.start_timer(TickDelta(4), RequestId(1), ExpiryAction::Nop)
            .unwrap();
        assert_eq!(
            m.restart_timer(RequestId(1), TickDelta::ZERO),
            Err(TimerError::ZeroInterval)
        );
        assert!(m.is_outstanding(RequestId(1)));
    }

    #[test]
    fn debug_impl_for_actions() {
        let s = format!("{:?}", ExpiryAction::Nop);
        assert!(s.contains("Nop"));
        let s = format!(
            "{:?}",
            ExpiryAction::SetFlag(Arc::new(AtomicBool::new(false)))
        );
        assert!(s.contains("SetFlag"));
        let s = format!("{:?}", ExpiryAction::Callback(Box::new(|_, _| {})));
        assert!(s.contains("Callback"));
    }
}
