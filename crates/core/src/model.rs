//! A trivially-correct reference timer module used as the property-test
//! oracle.
//!
//! [`OracleScheme`] keeps a `BTreeMap` from deadline to an intrusive list
//! of the timers due at that tick (in start order). It makes no attempt to
//! be fast — `tick` is a map lookup — but its correctness is obvious by
//! inspection, which is the point: every real scheme in the workspace is
//! proptest-checked for trace equivalence against it. Buckets are the
//! arena's intrusive lists (§3.2), so stop and restart are an O(1) unlink
//! (plus the map lookup) and the update path never allocates.

use alloc::collections::BTreeMap;
use alloc::vec::Vec;

use crate::arena::{ListHead, NodeIdx, TimerArena};
use crate::counters::OpCounters;
use crate::handle::TimerHandle;
use crate::scheme::{DeadlinePeek, Expired, TimerScheme};
use crate::time::{Tick, TickDelta};
use crate::TimerError;

/// The reference implementation. See the [module docs](self).
pub struct OracleScheme<T> {
    now: Tick,
    by_deadline: BTreeMap<Tick, ListHead>,
    arena: TimerArena<T>,
    counters: OpCounters,
}

impl<T> OracleScheme<T> {
    /// Creates an empty oracle at time zero.
    #[must_use]
    pub fn new() -> OracleScheme<T> {
        OracleScheme {
            now: Tick::ZERO,
            by_deadline: BTreeMap::new(),
            arena: TimerArena::new(),
            counters: OpCounters::new(),
        }
    }

    /// The earliest outstanding deadline, if any (used by the event-driven
    /// time-flow mechanism of `tw-des`).
    #[must_use]
    pub fn next_deadline(&self) -> Option<Tick> {
        self.by_deadline.keys().next().copied()
    }
}

impl<T> DeadlinePeek for OracleScheme<T> {
    fn next_deadline(&self) -> Option<Tick> {
        self.by_deadline.keys().next().copied()
    }
}

impl<T> Default for OracleScheme<T> {
    fn default() -> Self {
        OracleScheme::new()
    }
}

impl<T> TimerScheme<T> for OracleScheme<T> {
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let (idx, handle) = self.arena.alloc(payload, deadline)?;
        let due = self.by_deadline.entry(deadline).or_default();
        self.arena.push_back(due, idx);
        self.counters.starts += 1;
        Ok(handle)
    }

    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError> {
        let idx = self.arena.resolve(handle)?;
        let deadline = self.arena.node(idx).deadline;
        // resolve() succeeding proves the node is live, so its deadline
        // entry exists; treat a miss as a stale handle rather than panic.
        let Some(due) = self.by_deadline.get_mut(&deadline) else {
            return Err(TimerError::Stale);
        };
        self.arena.unlink(due, idx);
        if due.is_empty() {
            self.by_deadline.remove(&deadline);
        }
        self.counters.stops += 1;
        Ok(self.arena.free(idx))
    }

    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        if interval.is_zero() {
            return Err(TimerError::ZeroInterval);
        }
        let new_deadline = self
            .now
            .checked_add_delta(interval)
            .ok_or(TimerError::DeadlineOverflow)?;
        let idx = self.arena.resolve(handle)?;
        let old_deadline = self.arena.node(idx).deadline;
        // Unlink from the old bucket; the node itself stays allocated, so
        // the client's handle (and its generation) remain valid throughout.
        let Some(due) = self.by_deadline.get_mut(&old_deadline) else {
            return Err(TimerError::Stale);
        };
        self.arena.unlink(due, idx);
        if due.is_empty() {
            self.by_deadline.remove(&old_deadline);
        }
        self.arena.node_mut(idx).deadline = new_deadline;
        // Relink at the new deadline, appending so the restart behaves like
        // a fresh start for FIFO purposes (same order every scheme's
        // update path must reproduce). Intrusive push_back never allocates,
        // keeping the update path a pure unlink + relink.
        let due = self.by_deadline.entry(new_deadline).or_default();
        self.arena.push_back(due, idx);
        self.counters.restarts += 1;
        Ok(())
    }

    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>)) {
        self.now = self.now.next();
        self.counters.ticks += 1;
        if let Some(mut due) = self.by_deadline.remove(&self.now) {
            while let Some(idx) = self.arena.pop_front(&mut due) {
                let handle = self.arena.handle_of(idx);
                let deadline = self.arena.node(idx).deadline;
                let payload = self.arena.free(idx);
                self.counters.expiries += 1;
                expired(Expired {
                    handle,
                    payload,
                    deadline,
                    fired_at: self.now,
                });
            }
        }
    }

    fn now(&self) -> Tick {
        self.now
    }

    fn outstanding(&self) -> usize {
        self.arena.len()
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        self.arena.set_capacity_limit(limit);
        true
    }

    fn name(&self) -> &'static str {
        "oracle(btreemap)"
    }
}

impl<T> crate::validate::InvariantCheck for OracleScheme<T> {
    /// Oracle invariants: every map entry is a strictly-future deadline with
    /// a non-empty list of live arena nodes carrying that same deadline, and
    /// the map accounts for every allocated node exactly once.
    fn check_invariants(&self) -> Result<(), crate::validate::InvariantViolation> {
        use crate::validate::InvariantViolation;
        let scheme = self.name();
        let fail = |detail: alloc::string::String| Err(InvariantViolation::new(scheme, detail));
        if let Err(detail) = self.arena.check_storage() {
            return fail(detail);
        }
        let mut total = 0usize;
        let mut seen: Vec<NodeIdx> = Vec::new();
        for (&deadline, due) in &self.by_deadline {
            if deadline <= self.now {
                return fail(alloc::format!(
                    "deadline {} is not in the future (now {})",
                    deadline.as_u64(),
                    self.now.as_u64()
                ));
            }
            if due.is_empty() {
                return fail(alloc::format!(
                    "empty bucket left behind for deadline {}",
                    deadline.as_u64()
                ));
            }
            let idxs = match self.arena.check_list(due) {
                Ok(idxs) => idxs,
                Err(detail) => return fail(detail),
            };
            for &idx in &idxs {
                if !self.arena.is_live(idx) {
                    return fail(alloc::format!(
                        "map references freed node under deadline {}",
                        deadline.as_u64()
                    ));
                }
                if self.arena.node(idx).deadline != deadline {
                    return fail(alloc::format!(
                        "node filed under {} carries deadline {}",
                        deadline.as_u64(),
                        self.arena.node(idx).deadline.as_u64()
                    ));
                }
                if seen.contains(&idx) {
                    return fail(alloc::string::String::from(
                        "node appears twice in the deadline map",
                    ));
                }
                seen.push(idx);
            }
            total += idxs.len();
        }
        if total != self.arena.len() {
            return fail(alloc::format!(
                "{total} nodes in the map but {} in the arena",
                self.arena.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::TimerSchemeExt;

    #[test]
    fn fires_at_exact_deadline() {
        let mut o: OracleScheme<&str> = OracleScheme::new();
        o.start_timer(TickDelta(3), "a").unwrap();
        o.start_timer(TickDelta(1), "b").unwrap();
        o.start_timer(TickDelta(3), "c").unwrap();
        let fired = o.collect_ticks(3);
        let tags: Vec<(&str, u64)> = fired
            .iter()
            .map(|e| (e.payload, e.fired_at.as_u64()))
            .collect();
        assert_eq!(tags, vec![("b", 1), ("a", 3), ("c", 3)]);
        assert_eq!(o.outstanding(), 0);
    }

    #[test]
    fn same_deadline_fifo_start_order() {
        let mut o: OracleScheme<u32> = OracleScheme::new();
        for i in 0..10 {
            o.start_timer(TickDelta(5), i).unwrap();
        }
        let fired = o.collect_ticks(5);
        let order: Vec<u32> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stop_returns_payload_and_prevents_fire() {
        let mut o: OracleScheme<&str> = OracleScheme::new();
        let h = o.start_timer(TickDelta(2), "x").unwrap();
        assert_eq!(o.stop_timer(h), Ok("x"));
        assert_eq!(o.stop_timer(h), Err(TimerError::Stale));
        assert!(o.collect_ticks(4).is_empty());
    }

    #[test]
    fn zero_interval_rejected() {
        let mut o: OracleScheme<()> = OracleScheme::new();
        assert_eq!(
            o.start_timer(TickDelta::ZERO, ()),
            Err(TimerError::ZeroInterval)
        );
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut o: OracleScheme<u8> = OracleScheme::new();
        assert_eq!(o.next_deadline(), None);
        o.start_timer(TickDelta(9), 0).unwrap();
        let h = o.start_timer(TickDelta(4), 1).unwrap();
        assert_eq!(o.next_deadline(), Some(Tick(4)));
        o.stop_timer(h).unwrap();
        assert_eq!(o.next_deadline(), Some(Tick(9)));
    }

    #[test]
    fn counters_track_operations() {
        let mut o: OracleScheme<()> = OracleScheme::new();
        let h = o.start_timer(TickDelta(1), ()).unwrap();
        o.stop_timer(h).unwrap();
        o.start_timer(TickDelta(1), ()).unwrap();
        o.run_ticks(1);
        let c = o.counters();
        assert_eq!(c.starts, 2);
        assert_eq!(c.stops, 1);
        assert_eq!(c.ticks, 1);
        assert_eq!(c.expiries, 1);
        o.reset_counters();
        assert_eq!(o.counters().starts, 0);
    }

    #[test]
    fn restart_rearms_and_keeps_fifo_append_order() {
        let mut o: OracleScheme<&str> = OracleScheme::new();
        let h = o.start_timer(TickDelta(2), "moved").unwrap();
        o.start_timer(TickDelta(5), "fixed").unwrap();
        o.restart_timer(h, TickDelta(5)).unwrap();
        // The restarted timer appends behind the one already due at tick 5.
        let fired = o.collect_ticks(5);
        let order: Vec<&str> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(order, vec!["fixed", "moved"]);
        assert_eq!(o.counters().restarts, 1);
    }

    #[test]
    fn restart_rejects_stale_and_zero_without_side_effects() {
        let mut o: OracleScheme<()> = OracleScheme::new();
        let h = o.start_timer(TickDelta(3), ()).unwrap();
        assert_eq!(
            o.restart_timer(h, TickDelta::ZERO),
            Err(TimerError::ZeroInterval)
        );
        crate::validate::InvariantCheck::check_invariants(&o).unwrap();
        assert_eq!(o.collect_ticks(3).len(), 1);
        assert_eq!(o.restart_timer(h, TickDelta(1)), Err(TimerError::Stale));
    }

    #[test]
    fn handles_stale_after_expiry() {
        let mut o: OracleScheme<()> = OracleScheme::new();
        let h = o.start_timer(TickDelta(1), ()).unwrap();
        o.run_ticks(1);
        assert_eq!(o.stop_timer(h), Err(TimerError::Stale));
    }
}
