//! A generational slab of timer records with safe intrusive doubly-linked
//! lists.
//!
//! Every list-based scheme in the paper depends on two things the original
//! implementation got from raw pointers (§3.2):
//!
//! 1. O(1) `STOP_TIMER` — the client-held reference can unlink a record from
//!    whatever doubly-linked list it currently sits on, and
//! 2. O(1) migration — a record can be moved between lists (wheel slots,
//!    hierarchy levels) without allocation.
//!
//! [`TimerArena`] provides both in safe Rust: records live in a slab indexed
//! by `u32`, links are indices rather than pointers, and each slot carries a
//! generation counter so a stale [`TimerHandle`] can never reach a recycled
//! record (the ABA problem). Freed slots form an intrusive free list, so
//! steady-state operation performs no allocation at all.
//!
//! Lists are headed by [`ListHead`] values owned by the scheme (one per wheel
//! slot, for example); the arena only stores the per-node `next`/`prev`
//! links. All operations are O(1) except iteration.

use alloc::format;
use alloc::string::String;
use alloc::vec::Vec;

use crate::handle::TimerHandle;
use crate::time::Tick;
use crate::TimerError;

/// Sentinel index meaning "no node".
const NIL: u32 = u32::MAX;

/// The single audited `u32 -> usize` widening for the slab's index domain
/// (slab keys and node counts). `alloc` refuses to grow past `u32::MAX`
/// entries and every supported target has `usize` of at least 32 bits, so
/// the widening is lossless; all other arena code routes through here.
#[inline]
const fn slab_index(raw: u32) -> usize {
    // tw-analyze: allow(TW001, reason = "audited choke point: lossless u32 -> usize widening of a slab key; the rest of the arena routes every widening through this helper")
    raw as usize
}

/// The one liveness panic, shared by [`TimerArena::node`] and
/// [`TimerArena::node_mut`]: `NodeIdx` liveness is the scheme's
/// responsibility (documented `# Panics` contract); client-facing paths
/// resolve a `TimerHandle` first and get `TimerError::Stale` instead.
#[cold]
#[inline(never)]
fn not_live(idx: NodeIdx) -> ! {
    // tw-analyze: allow(TW002, reason = "documented # Panics contract routed through one audited choke point: NodeIdx liveness is the scheme's responsibility; client-facing paths resolve TimerHandle first and get TimerError::Stale instead")
    panic!("arena node {} is not live", idx.0)
}

/// Index of a live node inside a [`TimerArena`].
///
/// Unlike [`TimerHandle`], a `NodeIdx` is not generation-checked; it is only
/// handed out by arena operations that guarantee liveness and must not be
/// retained across a `free` of the same node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeIdx(u32);

impl NodeIdx {
    /// Returns the raw slab index.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Reconstructs an index from [`as_u32`](Self::as_u32) output.
    ///
    /// The caller must ensure the node is still live; arena accessors panic
    /// on a freed index.
    #[must_use]
    pub const fn from_u32(raw: u32) -> NodeIdx {
        NodeIdx(raw)
    }
}

/// The head of an intrusive doubly-linked list of timer records.
///
/// A `ListHead` is plain data — copying it would alias the list, so it is
/// deliberately not `Clone`. A fresh head is an empty list.
#[derive(Debug)]
pub struct ListHead {
    head: u32,
    tail: u32,
    len: u32,
}

impl ListHead {
    /// Creates an empty list.
    #[must_use]
    pub const fn new() -> ListHead {
        ListHead {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Returns the number of nodes on the list.
    #[must_use]
    pub fn len(&self) -> usize {
        slab_index(self.len)
    }

    /// Returns `true` if the list has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the first node on the list, if any.
    #[must_use]
    pub fn first(&self) -> Option<NodeIdx> {
        (self.head != NIL).then_some(NodeIdx(self.head))
    }

    /// Returns the last node on the list, if any.
    #[must_use]
    pub fn last(&self) -> Option<NodeIdx> {
        (self.tail != NIL).then_some(NodeIdx(self.tail))
    }
}

impl Default for ListHead {
    fn default() -> Self {
        ListHead::new()
    }
}

/// A live timer record.
///
/// `deadline`, `aux` and `bucket` are scheme-owned scratch fields:
///
/// * `deadline` — the absolute expiry tick (every scheme stores it; the
///   precision experiments compare it with the actual firing tick),
/// * `aux` — scheme-defined: remaining interval (Scheme 1), rounds counter
///   (Scheme 6), migration count (Scheme 7), …
/// * `bucket` — which list the node is on (wheel slot, hierarchy level tag),
///   so `stop_timer` can locate the right [`ListHead`] in O(1).
#[derive(Debug)]
pub struct Node<T> {
    /// Client payload delivered on expiry.
    pub payload: T,
    /// Absolute tick at which the timer is scheduled to expire.
    pub deadline: Tick,
    /// Scheme-defined auxiliary word (rounds, remaining interval, …).
    pub aux: u64,
    /// Scheme-defined home-list tag (wheel slot index, level, …). Kept in
    /// the native index domain so slot arithmetic never round-trips through
    /// a narrower integer.
    pub bucket: usize,
    next: u32,
    prev: u32,
    linked: bool,
}

enum Slot<T> {
    Free { next_free: u32 },
    Occupied(Node<T>),
}

/// A generational slab of timer records plus intrusive list plumbing.
///
/// See the [module docs](self) for the design rationale.
pub struct TimerArena<T> {
    slots: Vec<(u32, Slot<T>)>, // (generation, slot)
    free_head: u32,
    live: u32,
    /// Live-record ceiling: `alloc` returns [`TimerError::Exhausted`] once
    /// `live` reaches it. Defaults to [`TimerArena::MAX_CAPACITY`] (the slab
    /// index domain minus the NIL sentinel) and can be lowered to bound the
    /// facility's memory, e.g. per tenant or per shard.
    limit: u32,
}

impl<T> TimerArena<T> {
    /// The hard ceiling on live records: the `u32` index domain minus the
    /// NIL sentinel. [`set_capacity_limit`](Self::set_capacity_limit) can
    /// only lower the limit below this, never raise it above.
    pub const MAX_CAPACITY: usize = slab_index(NIL - 1);

    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> TimerArena<T> {
        TimerArena {
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
            limit: NIL - 1,
        }
    }

    /// Creates an arena with room for `cap` records before reallocating.
    #[must_use]
    pub fn with_capacity(cap: usize) -> TimerArena<T> {
        TimerArena {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            live: 0,
            limit: NIL - 1,
        }
    }

    /// Caps the number of live records at `limit` (clamped to
    /// [`MAX_CAPACITY`](Self::MAX_CAPACITY)). Once `len()` reaches the
    /// limit, `alloc` returns [`TimerError::Exhausted`] until a `free`
    /// brings the population back under it — allocation degrades gracefully
    /// instead of aborting the facility.
    ///
    /// Lowering the limit below the current `len()` does not evict records;
    /// it only refuses new ones until the population drains.
    pub fn set_capacity_limit(&mut self, limit: usize) {
        self.limit = u32::try_from(limit.min(Self::MAX_CAPACITY)).unwrap_or(NIL - 1);
    }

    /// The current live-record ceiling (see
    /// [`set_capacity_limit`](Self::set_capacity_limit)).
    #[must_use]
    pub fn capacity_limit(&self) -> usize {
        slab_index(self.limit)
    }

    /// Number of live (outstanding) records.
    #[must_use]
    pub fn len(&self) -> usize {
        slab_index(self.live)
    }

    /// Returns `true` if no records are outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slab slots ever allocated (live + free-listed). Steady-state
    /// workloads must plateau here: growth under constant `len()` means a
    /// recycling leak.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a record, returning its index and generation-checked handle.
    ///
    /// The new record is not on any list; the caller links it with
    /// [`push_back`](Self::push_back) or a sorted insert.
    ///
    /// # Errors
    ///
    /// [`TimerError::Exhausted`] when the live population has reached the
    /// [capacity limit](Self::set_capacity_limit) (or the `u32::MAX - 1`
    /// slab ceiling — NIL is the sentinel and is never allocated). The
    /// arena recovers as soon as a record is freed: the freed slot heads
    /// the free list and the next `alloc` reuses it.
    pub fn alloc(
        &mut self,
        payload: T,
        deadline: Tick,
    ) -> Result<(NodeIdx, TimerHandle), TimerError> {
        if self.live >= self.limit {
            return Err(TimerError::Exhausted);
        }
        let node = Node {
            payload,
            deadline,
            aux: 0,
            bucket: 0,
            next: NIL,
            prev: NIL,
            linked: false,
        };
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            let (_, slot) = &self.slots[slab_index(idx)];
            let next_free = match slot {
                Slot::Free { next_free } => *next_free,
                // tw-analyze: allow(TW002, reason = "free_head only ever receives indices of slots just made Free; an occupied hit is slab corruption, not client input")
                Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
            };
            self.free_head = next_free;
            self.slots[slab_index(idx)].1 = Slot::Occupied(node);
            idx
        } else {
            let idx = match u32::try_from(self.slots.len()) {
                // NIL (u32::MAX) is the sentinel and must never be allocated.
                Ok(idx) if idx != NIL => idx,
                // live < limit <= NIL - 1 and every slab slot is live or
                // free-listed, so a full slab implies a non-empty free list
                // and this branch is unreachable; report it as exhaustion
                // rather than aborting the facility.
                _ => return Err(TimerError::Exhausted),
            };
            // tw-analyze: allow(TW004, reason = "amortized slab growth on the alloc path only; steady-state traffic recycles the free list and never reaches this branch (verified by the slot_count plateau tests)")
            self.slots.push((0, Slot::Occupied(node)));
            idx
        };
        self.live += 1;
        let generation = self.slots[slab_index(idx)].0;
        Ok((
            NodeIdx(idx),
            TimerHandle {
                index: idx,
                generation,
            },
        ))
    }

    /// Frees a record that has already been unlinked from its list, bumping
    /// the slot generation so outstanding handles to it become stale.
    ///
    /// Returns the payload.
    ///
    /// # Panics
    ///
    /// Panics if the node is still linked into a list, or if `idx` is not
    /// live (both indicate scheme-internal corruption).
    pub fn free(&mut self, idx: NodeIdx) -> T {
        let (generation, slot) = &mut self.slots[slab_index(idx.0)];
        let taken = core::mem::replace(
            slot,
            Slot::Free {
                next_free: self.free_head,
            },
        );
        let node = match taken {
            Slot::Occupied(node) => node,
            // tw-analyze: allow(TW002, reason = "NodeIdx is only handed out for live nodes (documented contract); a double free is scheme-internal corruption the generation check exists to surface loudly")
            Slot::Free { .. } => panic!("double free of arena node {}", idx.0),
        };
        // tw-analyze: allow(TW002, reason = "documented # Panics contract: freeing a linked node would leave dangling list links; schemes must unlink first, so this is internal corruption")
        assert!(!node.linked, "freeing a node that is still linked");
        *generation = generation.wrapping_add(1);
        self.free_head = idx.0;
        self.live -= 1;
        node.payload
    }

    /// Resolves a handle to a live node index, or [`TimerError::Stale`].
    pub fn resolve(&self, handle: TimerHandle) -> Result<NodeIdx, TimerError> {
        match self.slots.get(slab_index(handle.index)) {
            Some((generation, Slot::Occupied(_))) if *generation == handle.generation => {
                Ok(NodeIdx(handle.index))
            }
            _ => Err(TimerError::Stale),
        }
    }

    /// Returns the handle that currently refers to a live node.
    #[must_use]
    pub fn handle_of(&self, idx: NodeIdx) -> TimerHandle {
        let (generation, slot) = &self.slots[slab_index(idx.0)];
        debug_assert!(matches!(slot, Slot::Occupied(_)));
        TimerHandle {
            index: idx.0,
            generation: *generation,
        }
    }

    /// Borrows a live node.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not refer to a live node.
    #[must_use]
    pub fn node(&self, idx: NodeIdx) -> &Node<T> {
        match &self.slots[slab_index(idx.0)].1 {
            Slot::Occupied(node) => node,
            Slot::Free { .. } => not_live(idx),
        }
    }

    /// Mutably borrows a live node.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not refer to a live node.
    #[must_use]
    pub fn node_mut(&mut self, idx: NodeIdx) -> &mut Node<T> {
        match &mut self.slots[slab_index(idx.0)].1 {
            Slot::Occupied(node) => node,
            Slot::Free { .. } => not_live(idx),
        }
    }

    /// Returns the successor of `idx` on its list.
    #[must_use]
    pub fn next(&self, idx: NodeIdx) -> Option<NodeIdx> {
        let n = self.node(idx).next;
        (n != NIL).then_some(NodeIdx(n))
    }

    /// Returns the predecessor of `idx` on its list.
    #[must_use]
    pub fn prev(&self, idx: NodeIdx) -> Option<NodeIdx> {
        let p = self.node(idx).prev;
        (p != NIL).then_some(NodeIdx(p))
    }

    /// Links an unlinked node at the front of `list`.
    pub fn push_front(&mut self, list: &mut ListHead, idx: NodeIdx) {
        self.assert_unlinked(idx);
        let old_head = list.head;
        self.node_mut(idx).next = old_head;
        if old_head != NIL {
            self.node_mut(NodeIdx(old_head)).prev = idx.0;
        } else {
            list.tail = idx.0;
        }
        list.head = idx.0;
        list.len += 1;
    }

    /// Links an unlinked node at the back of `list`.
    pub fn push_back(&mut self, list: &mut ListHead, idx: NodeIdx) {
        self.assert_unlinked(idx);
        let old_tail = list.tail;
        self.node_mut(idx).prev = old_tail;
        if old_tail != NIL {
            self.node_mut(NodeIdx(old_tail)).next = idx.0;
        } else {
            list.head = idx.0;
        }
        list.tail = idx.0;
        list.len += 1;
    }

    /// Links an unlinked node immediately before `at` on `list`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not on `list` (detected only in debug builds for the
    /// interior case; linking before a foreign head corrupts both lists).
    pub fn insert_before(&mut self, list: &mut ListHead, at: NodeIdx, idx: NodeIdx) {
        self.assert_unlinked(idx);
        let prev = self.node(at).prev;
        self.node_mut(idx).next = at.0;
        self.node_mut(idx).prev = prev;
        self.node_mut(at).prev = idx.0;
        if prev != NIL {
            self.node_mut(NodeIdx(prev)).next = idx.0;
        } else {
            debug_assert_eq!(list.head, at.0, "insert_before head of a different list");
            list.head = idx.0;
        }
        list.len += 1;
    }

    /// Unlinks a node from `list`, leaving it allocated but free-standing.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the node is not actually on `list`.
    pub fn unlink(&mut self, list: &mut ListHead, idx: NodeIdx) {
        let (prev, next) = {
            let node = self.node(idx);
            (node.prev, node.next)
        };
        if prev != NIL {
            self.node_mut(NodeIdx(prev)).next = next;
        } else {
            debug_assert_eq!(list.head, idx.0, "unlink from a different list (head)");
            list.head = next;
        }
        if next != NIL {
            self.node_mut(NodeIdx(next)).prev = prev;
        } else {
            debug_assert_eq!(list.tail, idx.0, "unlink from a different list (tail)");
            list.tail = prev;
        }
        let node = self.node_mut(idx);
        node.next = NIL;
        node.prev = NIL;
        node.linked = false;
        debug_assert!(list.len > 0, "unlink from empty list");
        list.len -= 1;
    }

    /// Unlinks and returns the first node of `list`, if any.
    pub fn pop_front(&mut self, list: &mut ListHead) -> Option<NodeIdx> {
        let idx = list.first()?;
        self.unlink(list, idx);
        Some(idx)
    }

    /// Iterates the node indices of `list` front to back.
    ///
    /// The arena is immutably borrowed for the duration; to mutate while
    /// walking, use [`ListHead::first`] and [`next`](Self::next) manually.
    pub fn iter<'a>(&'a self, list: &ListHead) -> ListIter<'a, T> {
        ListIter {
            arena: self,
            cur: list.head,
        }
    }

    /// Returns `true` if the live node `idx` is currently on some list.
    /// Schemes that store positions out-of-band (e.g. a heap index in
    /// `bucket`) use this to assert their nodes are *not* list-linked.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not refer to a live node.
    #[must_use]
    pub fn is_linked(&self, idx: NodeIdx) -> bool {
        self.node(idx).linked
    }

    /// Returns `true` if `idx` refers to a live (allocated) node.
    #[must_use]
    pub fn is_live(&self, idx: NodeIdx) -> bool {
        matches!(
            self.slots.get(slab_index(idx.0)),
            Some((_, Slot::Occupied(_)))
        )
    }

    /// Walks `list` verifying doubly-linked integrity, returning the nodes
    /// visited front to back.
    ///
    /// Checked: every referenced node is live and marked linked, `prev`
    /// pointers mirror `next` pointers, the walk terminates at `tail`
    /// without cycling, and the recorded `len` matches the node count.
    ///
    /// # Errors
    ///
    /// A description of the first corruption found.
    pub fn check_list(&self, list: &ListHead) -> Result<Vec<NodeIdx>, String> {
        let mut seen = Vec::with_capacity(list.len());
        let mut cur = list.head;
        let mut prev = NIL;
        while cur != NIL {
            if seen.len() > list.len() {
                return Err(format!(
                    "list walk exceeded recorded len {} (cycle or len drift)",
                    list.len()
                ));
            }
            let node = match self.slots.get(slab_index(cur)) {
                Some((_, Slot::Occupied(node))) => node,
                _ => return Err(format!("list references dead or out-of-range node {cur}")),
            };
            if !node.linked {
                return Err(format!("node {cur} is on a list but not marked linked"));
            }
            if node.prev != prev {
                return Err(format!(
                    "node {cur}: prev link {} does not mirror predecessor {}",
                    i64::from(node.prev),
                    i64::from(prev)
                ));
            }
            seen.push(NodeIdx(cur));
            prev = cur;
            cur = node.next;
        }
        if prev != list.tail {
            return Err(format!(
                "list tail {} does not match last walked node {}",
                i64::from(list.tail),
                i64::from(prev)
            ));
        }
        if seen.len() != list.len() {
            return Err(format!(
                "list len {} does not match walked node count {}",
                list.len(),
                seen.len()
            ));
        }
        Ok(seen)
    }

    /// Verifies the slab's internal accounting: the live counter matches the
    /// number of occupied slots, and the free list covers exactly the free
    /// slots without cycling or aliasing an occupied one.
    ///
    /// # Errors
    ///
    /// A description of the first corruption found.
    pub fn check_storage(&self) -> Result<(), String> {
        let occupied = self
            .slots
            .iter()
            .filter(|(_, slot)| matches!(slot, Slot::Occupied(_)))
            .count();
        if occupied != slab_index(self.live) {
            return Err(format!(
                "live counter {} does not match occupied slot count {occupied}",
                self.live
            ));
        }
        let mut free_count = 0usize;
        let mut cur = self.free_head;
        while cur != NIL {
            free_count += 1;
            if free_count > self.slots.len() {
                return Err(String::from("free list cycles"));
            }
            cur = match self.slots.get(slab_index(cur)) {
                Some((_, Slot::Free { next_free })) => *next_free,
                _ => {
                    return Err(format!(
                        "free list points at occupied or out-of-range slot {cur}"
                    ))
                }
            };
        }
        if free_count != self.slots.len() - occupied {
            return Err(format!(
                "free list holds {free_count} slots, expected {}",
                self.slots.len() - occupied
            ));
        }
        Ok(())
    }

    fn assert_unlinked(&mut self, idx: NodeIdx) {
        let node = self.node_mut(idx);
        // tw-analyze: allow(TW002, reason = "double-linking would silently corrupt two lists at once; the paper's intrusive-list model (section 3.2) requires a node on at most one list, so this guards internal consistency, not client input")
        assert!(!node.linked, "node {} is already on a list", idx.0);
        node.linked = true;
    }
}

impl<T> Default for TimerArena<T> {
    fn default() -> Self {
        TimerArena::new()
    }
}

/// Iterator over the nodes of one list, front to back.
pub struct ListIter<'a, T> {
    arena: &'a TimerArena<T>,
    cur: u32,
}

impl<T> Iterator for ListIter<'_, T> {
    type Item = NodeIdx;

    fn next(&mut self) -> Option<NodeIdx> {
        if self.cur == NIL {
            return None;
        }
        let idx = NodeIdx(self.cur);
        self.cur = self.arena.node(idx).next;
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Tick;

    fn deadlines(arena: &TimerArena<u32>, list: &ListHead) -> Vec<u64> {
        arena
            .iter(list)
            .map(|i| arena.node(i).deadline.as_u64())
            .collect()
    }

    #[test]
    fn alloc_free_recycles_with_new_generation() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let (idx, h1) = arena.alloc(1, Tick(5)).unwrap();
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.resolve(h1).unwrap(), idx);
        assert_eq!(arena.free(idx), 1);
        assert_eq!(arena.len(), 0);
        assert_eq!(arena.resolve(h1), Err(TimerError::Stale));

        let (idx2, h2) = arena.alloc(2, Tick(9)).unwrap();
        assert_eq!(idx2, idx, "slot should be recycled");
        assert_ne!(h1, h2, "generation must differ");
        assert_eq!(arena.resolve(h1), Err(TimerError::Stale));
        assert_eq!(arena.resolve(h2).unwrap(), idx2);
    }

    #[test]
    fn push_front_back_and_order() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let mut list = ListHead::new();
        let (a, _) = arena.alloc(0, Tick(1)).unwrap();
        let (b, _) = arena.alloc(0, Tick(2)).unwrap();
        let (c, _) = arena.alloc(0, Tick(3)).unwrap();
        arena.push_back(&mut list, b);
        arena.push_front(&mut list, a);
        arena.push_back(&mut list, c);
        assert_eq!(deadlines(&arena, &list), vec![1, 2, 3]);
        assert_eq!(list.len(), 3);
        assert_eq!(list.first(), Some(a));
        assert_eq!(list.last(), Some(c));
    }

    #[test]
    fn unlink_middle_head_tail() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let mut list = ListHead::new();
        let nodes: Vec<NodeIdx> = (0..5)
            .map(|i| {
                let (idx, _) = arena.alloc(i, Tick(u64::from(i))).unwrap();
                arena.push_back(&mut list, idx);
                idx
            })
            .collect();
        arena.unlink(&mut list, nodes[2]); // middle
        assert_eq!(deadlines(&arena, &list), vec![0, 1, 3, 4]);
        arena.unlink(&mut list, nodes[0]); // head
        assert_eq!(deadlines(&arena, &list), vec![1, 3, 4]);
        arena.unlink(&mut list, nodes[4]); // tail
        assert_eq!(deadlines(&arena, &list), vec![1, 3]);
        assert_eq!(list.len(), 2);
        // Unlinked nodes can be freed.
        arena.free(nodes[2]);
        arena.free(nodes[0]);
        arena.free(nodes[4]);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn insert_before_head_and_interior() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let mut list = ListHead::new();
        let (a, _) = arena.alloc(0, Tick(10)).unwrap();
        let (c, _) = arena.alloc(0, Tick(30)).unwrap();
        arena.push_back(&mut list, a);
        arena.push_back(&mut list, c);
        let (b, _) = arena.alloc(0, Tick(20)).unwrap();
        arena.insert_before(&mut list, c, b);
        assert_eq!(deadlines(&arena, &list), vec![10, 20, 30]);
        let (z, _) = arena.alloc(0, Tick(5)).unwrap();
        arena.insert_before(&mut list, a, z);
        assert_eq!(deadlines(&arena, &list), vec![5, 10, 20, 30]);
        assert_eq!(list.first().unwrap(), z);
    }

    #[test]
    fn pop_front_drains_in_order() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let mut list = ListHead::new();
        for i in 0..4 {
            let (idx, _) = arena.alloc(i, Tick(u64::from(i))).unwrap();
            arena.push_back(&mut list, idx);
        }
        let mut seen = Vec::new();
        while let Some(idx) = arena.pop_front(&mut list) {
            seen.push(arena.node(idx).payload);
            arena.free(idx);
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(list.is_empty());
        assert!(arena.is_empty());
    }

    #[test]
    fn moving_between_lists() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let mut l1 = ListHead::new();
        let mut l2 = ListHead::new();
        let (a, _) = arena.alloc(7, Tick(1)).unwrap();
        arena.push_back(&mut l1, a);
        arena.unlink(&mut l1, a);
        arena.push_back(&mut l2, a);
        assert!(l1.is_empty());
        assert_eq!(l2.len(), 1);
        assert_eq!(arena.node(a).payload, 7);
    }

    #[test]
    #[should_panic(expected = "already on a list")]
    fn double_link_panics() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let mut list = ListHead::new();
        let (a, _) = arena.alloc(0, Tick(1)).unwrap();
        arena.push_back(&mut list, a);
        arena.push_back(&mut list, a);
    }

    #[test]
    #[should_panic(expected = "still linked")]
    fn free_while_linked_panics() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let mut list = ListHead::new();
        let (a, _) = arena.alloc(0, Tick(1)).unwrap();
        arena.push_back(&mut list, a);
        arena.free(a);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let (a, _) = arena.alloc(0, Tick(1)).unwrap();
        arena.free(a);
        arena.free(a);
    }

    #[test]
    fn forged_handle_is_stale() {
        let arena: TimerArena<u32> = TimerArena::new();
        let forged = TimerHandle::from_raw(999, 0);
        assert_eq!(arena.resolve(forged), Err(TimerError::Stale));
    }

    #[test]
    fn handle_of_roundtrips() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let (idx, h) = arena.alloc(0, Tick(1)).unwrap();
        assert_eq!(arena.handle_of(idx), h);
    }

    #[test]
    fn full_arena_rejects_cleanly_and_recovers_after_free() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        arena.set_capacity_limit(2);
        assert_eq!(arena.capacity_limit(), 2);
        let (idx1, h1) = arena.alloc(1, Tick(1)).unwrap();
        let (_, h2) = arena.alloc(2, Tick(2)).unwrap();
        // At the limit: rejection is an error, not an abort, and repeats
        // without growing the slab or corrupting storage.
        assert_eq!(arena.alloc(3, Tick(3)).unwrap_err(), TimerError::Exhausted);
        assert_eq!(arena.alloc(3, Tick(3)).unwrap_err(), TimerError::Exhausted);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.slot_count(), 2);
        assert!(arena.resolve(h1).is_ok());
        assert!(arena.resolve(h2).is_ok());
        // One free brings the arena back under the limit; the freed slot is
        // recycled, so recovery allocates without slab growth.
        assert_eq!(arena.free(idx1), 1);
        let (_, h3) = arena.alloc(3, Tick(3)).unwrap();
        assert_eq!(
            arena.slot_count(),
            2,
            "recovered alloc reuses the freed slot"
        );
        assert!(arena.resolve(h3).is_ok());
        assert_eq!(arena.resolve(h1), Err(TimerError::Stale));
        arena.check_storage().unwrap();
    }

    #[test]
    fn capacity_limit_clamps_to_the_slab_ceiling() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        assert_eq!(arena.capacity_limit(), TimerArena::<u32>::MAX_CAPACITY);
        arena.set_capacity_limit(usize::MAX);
        assert_eq!(arena.capacity_limit(), TimerArena::<u32>::MAX_CAPACITY);
        arena.set_capacity_limit(0);
        assert_eq!(arena.capacity_limit(), 0);
        assert_eq!(arena.alloc(0, Tick(1)).unwrap_err(), TimerError::Exhausted);
    }

    #[test]
    fn scratch_fields_are_scheme_writable() {
        let mut arena: TimerArena<u32> = TimerArena::new();
        let (idx, _) = arena.alloc(0, Tick(1)).unwrap();
        arena.node_mut(idx).aux = 42;
        arena.node_mut(idx).bucket = 7;
        assert_eq!(arena.node(idx).aux, 42);
        assert_eq!(arena.node(idx).bucket, 7);
    }
}

#[cfg(test)]
// Test payloads use small counters; the narrowing casts cannot truncate.
#[allow(clippy::cast_possible_truncation)]
mod proptests {
    use super::*;
    use crate::time::Tick;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[derive(Debug, Clone)]
    enum Op {
        PushFront(u8),
        PushBack(u8),
        PopFront(u8),
        UnlinkAt(u8, u8),
        MoveBetween(u8, u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<u8>().prop_map(Op::PushFront),
            any::<u8>().prop_map(Op::PushBack),
            any::<u8>().prop_map(Op::PopFront),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::UnlinkAt(a, b)),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::MoveBetween(a, b)),
        ]
    }

    proptest! {
        /// The intrusive list behaves exactly like a `VecDeque` model under
        /// an arbitrary interleaving of operations across 4 lists.
        #[test]
        fn lists_match_vecdeque_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            const LISTS: usize = 4;
            let mut arena: TimerArena<u64> = TimerArena::new();
            let mut lists: Vec<ListHead> = (0..LISTS).map(|_| ListHead::new()).collect();
            let mut model: Vec<VecDeque<u64>> = vec![VecDeque::new(); LISTS];
            let mut next_tag: u64 = 0;

            for op in ops {
                match op {
                    Op::PushFront(l) => {
                        let l = l as usize % LISTS;
                        let (idx, _) = arena.alloc(next_tag, Tick(next_tag)).unwrap();
                        arena.push_front(&mut lists[l], idx);
                        model[l].push_front(next_tag);
                        next_tag += 1;
                    }
                    Op::PushBack(l) => {
                        let l = l as usize % LISTS;
                        let (idx, _) = arena.alloc(next_tag, Tick(next_tag)).unwrap();
                        arena.push_back(&mut lists[l], idx);
                        model[l].push_back(next_tag);
                        next_tag += 1;
                    }
                    Op::PopFront(l) => {
                        let l = l as usize % LISTS;
                        let got = arena.pop_front(&mut lists[l]).map(|i| arena.free(i));
                        prop_assert_eq!(got, model[l].pop_front());
                    }
                    Op::UnlinkAt(l, pos) => {
                        let l = l as usize % LISTS;
                        if !model[l].is_empty() {
                            let pos = pos as usize % model[l].len();
                            let idx = arena.iter(&lists[l]).nth(pos).unwrap();
                            arena.unlink(&mut lists[l], idx);
                            let tag = arena.free(idx);
                            let expect = model[l].remove(pos).unwrap();
                            prop_assert_eq!(tag, expect);
                        }
                    }
                    Op::MoveBetween(a, b) => {
                        let a = a as usize % LISTS;
                        let b = b as usize % LISTS;
                        if a != b && !model[a].is_empty() {
                            let idx = lists[a].first().unwrap();
                            arena.unlink(&mut lists[a], idx);
                            arena.push_back(&mut lists[b], idx);
                            let tag = model[a].pop_front().unwrap();
                            model[b].push_back(tag);
                        }
                    }
                }
                // Full-state comparison after every op.
                for l in 0..LISTS {
                    let got: Vec<u64> =
                        arena.iter(&lists[l]).map(|i| arena.node(i).payload).collect();
                    let expect: Vec<u64> = model[l].iter().copied().collect();
                    prop_assert_eq!(got, expect);
                    prop_assert_eq!(lists[l].len(), model[l].len());
                }
                let total: usize = model.iter().map(VecDeque::len).sum();
                prop_assert_eq!(arena.len(), total);
            }
        }

        /// Handles issued for freed nodes never resolve again, even after the
        /// slot is recycled many times.
        #[test]
        fn stale_handles_never_resolve(rounds in 1usize..50) {
            let mut arena: TimerArena<u32> = TimerArena::new();
            let mut stale = Vec::new();
            for r in 0..rounds {
                let (idx, h) = arena.alloc(r as u32, Tick(0)).unwrap();
                for old in &stale {
                    prop_assert_eq!(arena.resolve(*old), Err(TimerError::Stale));
                }
                prop_assert!(arena.resolve(h).is_ok());
                arena.free(idx);
                stale.push(h);
            }
            for old in &stale {
                prop_assert_eq!(arena.resolve(*old), Err(TimerError::Stale));
            }
        }
    }
}
