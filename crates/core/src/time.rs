//! Discrete time model for the timer facility.
//!
//! The paper (§2) defines a timer module whose clock advances in units of a
//! fixed granularity `T`. We model absolute time as [`Tick`] — the number of
//! granularity units since the module was created — and relative time (the
//! `Interval` argument of `START_TIMER`) as [`TickDelta`].
//!
//! Both are thin newtypes over `u64` with checked arithmetic: a timer module
//! is long-lived kernel-style infrastructure, and silent wraparound of the
//! clock would corrupt every outstanding deadline.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute point in discrete time, counted in clock ticks since start.
///
/// `Tick` is totally ordered and supports adding a [`TickDelta`]. Subtracting
/// two `Tick`s yields a [`TickDelta`] and panics (in debug) on underflow —
/// deadlines never precede the time they were computed from.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

/// A relative duration in clock ticks — the `Interval` of `START_TIMER`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TickDelta(pub u64);

impl Tick {
    /// The origin of time for a freshly created timer module.
    pub const ZERO: Tick = Tick(0);

    /// Returns the raw tick count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Advances this instant by one tick.
    ///
    /// # Panics
    ///
    /// Panics if the tick counter would overflow `u64` (after ~584,000 years
    /// at nanosecond granularity; treated as unreachable corruption).
    #[inline]
    #[must_use]
    pub fn next(self) -> Tick {
        // tw-analyze: allow(TW002, reason = "documented # Panics contract: u64 tick overflow takes ~584,000 years at nanosecond granularity and is treated as unreachable corruption, not a client input")
        Tick(self.0.checked_add(1).expect("tick counter overflow"))
    }

    /// Returns the duration from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    #[must_use]
    pub fn since(self, earlier: Tick) -> TickDelta {
        TickDelta(
            self.0
                .checked_sub(earlier.0)
                // tw-analyze: allow(TW002, reason = "documented # Panics contract: callers must pass an earlier tick; the fallible form checked_since exists for client-driven inputs")
                .expect("Tick::since: earlier is in the future"),
        )
    }

    /// Returns the duration from `earlier` to `self`, or `None` if `earlier`
    /// is in the future.
    #[inline]
    #[must_use]
    pub fn checked_since(self, earlier: Tick) -> Option<TickDelta> {
        self.0.checked_sub(earlier.0).map(TickDelta)
    }

    /// Adds an interval without panicking: `None` when the deadline would
    /// overflow the `u64` tick domain.
    ///
    /// This is the non-panicking form of `Tick + TickDelta`; `START_TIMER`
    /// paths use it to turn a user-supplied interval that lands past the end
    /// of representable time into
    /// [`TimerError::DeadlineOverflow`](crate::TimerError) instead of a
    /// panic.
    #[inline]
    #[must_use]
    pub fn checked_add_delta(self, rhs: TickDelta) -> Option<Tick> {
        self.0.checked_add(rhs.0).map(Tick)
    }

    /// Slot index of this instant on a wheel of `table_size` slots: the tick
    /// count reduced mod the table size (§6.1's hash `H = T mod N`).
    ///
    /// This is the audited choke point for tick-domain → index-domain
    /// conversion: the reduction happens in `u64` and the result is `<
    /// table_size`, so narrowing to `usize` is lossless on every target that
    /// can hold the slot vector in memory.
    ///
    /// # Panics
    ///
    /// Panics if `table_size` is zero.
    #[inline]
    #[must_use]
    pub fn slot_in(self, table_size: usize) -> usize {
        slot_index(self.0 % ticks_of(table_size))
    }

    /// Slot index on a power-of-two wheel via the §6.1.2 optimization:
    /// "if the table size is a power of 2, the index can be found cheaply"
    /// with a bitwise AND of `mask = table_size - 1` (see [`pow2_mask`]).
    #[inline]
    #[must_use]
    pub fn slot_masked(self, mask: u64) -> usize {
        slot_index(self.0 & mask)
    }

    /// Signed lateness of `self` relative to `scheduled`, saturating at the
    /// `i64` extremes: positive when `self` is after `scheduled`.
    ///
    /// Feeds [`Expired::error`](crate::scheme::Expired::error) without raw
    /// sign-changing casts.
    #[inline]
    #[must_use]
    pub fn signed_offset_from(self, scheduled: Tick) -> i64 {
        if self.0 >= scheduled.0 {
            i64::try_from(self.0 - scheduled.0).unwrap_or(i64::MAX)
        } else {
            i64::try_from(scheduled.0 - self.0).map_or(i64::MIN, |d| -d)
        }
    }
}

/// The tick-domain width of a table of `len` slots.
///
/// Lossless on every supported target (`usize` is at most 64 bits); the
/// audited inverse of [`slot_index`].
#[inline]
#[must_use]
pub fn ticks_of(len: usize) -> u64 {
    u64::try_from(len).unwrap_or(u64::MAX)
}

/// Narrows an already-reduced slot index (or slot count) from the `u64`
/// tick domain to a `usize` index.
///
/// Callers must have reduced `reduced` below their table size; since slot
/// tables are in-memory `Vec`s, such a value always fits `usize`. On a
/// (hypothetical) target where it did not, the saturated index would fault
/// loudly on first use rather than aliasing another slot.
#[inline]
#[must_use]
pub fn slot_index(reduced: u64) -> usize {
    usize::try_from(reduced).unwrap_or(usize::MAX)
}

/// `table_size - 1` as a `u64` AND-mask when `table_size` is a power of two
/// (the §6.1.2 cheap-hash condition), else `None`.
#[inline]
#[must_use]
pub fn pow2_mask(table_size: usize) -> Option<u64> {
    table_size
        .is_power_of_two()
        .then(|| ticks_of(table_size) - 1)
}

impl TickDelta {
    /// The zero-length interval (rejected by `START_TIMER`; see
    /// [`crate::error::TimerError::ZeroInterval`]).
    pub const ZERO: TickDelta = TickDelta(0);

    /// A one-tick interval, the smallest interval a timer can be set for.
    pub const ONE: TickDelta = TickDelta(1);

    /// Returns the raw tick count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` for the zero-length interval.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two intervals.
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, rhs: TickDelta) -> TickDelta {
        TickDelta(self.0.saturating_sub(rhs.0))
    }

    /// Adds two intervals without panicking: `None` on `u64` overflow.
    #[inline]
    #[must_use]
    pub fn checked_add(self, rhs: TickDelta) -> Option<TickDelta> {
        self.0.checked_add(rhs.0).map(TickDelta)
    }

    /// An interval spanning one full revolution of a wheel of `len` slots.
    #[inline]
    #[must_use]
    pub fn table_span(len: usize) -> TickDelta {
        TickDelta(ticks_of(len))
    }
}

impl Add<TickDelta> for Tick {
    type Output = Tick;

    #[inline]
    fn add(self, rhs: TickDelta) -> Tick {
        Tick(self.0.checked_add(rhs.0).expect("deadline overflow"))
    }
}

impl AddAssign<TickDelta> for Tick {
    #[inline]
    fn add_assign(&mut self, rhs: TickDelta) {
        *self = *self + rhs;
    }
}

impl Sub<Tick> for Tick {
    type Output = TickDelta;

    #[inline]
    fn sub(self, rhs: Tick) -> TickDelta {
        self.since(rhs)
    }
}

impl Add<TickDelta> for TickDelta {
    type Output = TickDelta;

    #[inline]
    fn add(self, rhs: TickDelta) -> TickDelta {
        TickDelta(self.0.checked_add(rhs.0).expect("interval overflow"))
    }
}

impl From<u64> for Tick {
    #[inline]
    fn from(v: u64) -> Tick {
        Tick(v)
    }
}

impl From<u64> for TickDelta {
    #[inline]
    fn from(v: u64) -> TickDelta {
        TickDelta(v)
    }
}

impl fmt::Debug for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for TickDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}", self.0)
    }
}

impl fmt::Display for TickDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_ordering_and_arithmetic() {
        let t0 = Tick::ZERO;
        let t5 = t0 + TickDelta(5);
        assert_eq!(t5.as_u64(), 5);
        assert!(t0 < t5);
        assert_eq!(t5.since(t0), TickDelta(5));
        assert_eq!(t5 - t0, TickDelta(5));
        assert_eq!(t5.next().as_u64(), 6);
    }

    #[test]
    fn checked_since_returns_none_for_future() {
        let t0 = Tick(3);
        let t1 = Tick(7);
        assert_eq!(t1.checked_since(t0), Some(TickDelta(4)));
        assert_eq!(t0.checked_since(t1), None);
    }

    #[test]
    #[should_panic(expected = "earlier is in the future")]
    fn since_panics_on_underflow() {
        let _ = Tick(1).since(Tick(2));
    }

    #[test]
    fn delta_helpers() {
        assert!(TickDelta::ZERO.is_zero());
        assert!(!TickDelta::ONE.is_zero());
        assert_eq!(TickDelta(7) + TickDelta(3), TickDelta(10));
        assert_eq!(TickDelta(3).saturating_sub(TickDelta(7)), TickDelta::ZERO);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{:?}", Tick(42)), "t42");
        assert_eq!(format!("{}", Tick(42)), "42");
        assert_eq!(format!("{:?}", TickDelta(9)), "+9");
        assert_eq!(format!("{}", TickDelta(9)), "9");
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Tick(10);
        t += TickDelta(5);
        assert_eq!(t, Tick(15));
    }

    #[test]
    fn checked_add_delta_catches_overflow() {
        assert_eq!(Tick(10).checked_add_delta(TickDelta(5)), Some(Tick(15)));
        assert_eq!(Tick(u64::MAX).checked_add_delta(TickDelta(1)), None);
        assert_eq!(
            Tick(u64::MAX).checked_add_delta(TickDelta::ZERO),
            Some(Tick(u64::MAX))
        );
    }

    #[test]
    fn delta_checked_add_catches_overflow() {
        assert_eq!(TickDelta(7).checked_add(TickDelta(3)), Some(TickDelta(10)));
        assert_eq!(TickDelta(u64::MAX).checked_add(TickDelta(1)), None);
    }

    #[test]
    fn slot_in_reduces_mod_table_size() {
        assert_eq!(Tick(0).slot_in(8), 0);
        assert_eq!(Tick(7).slot_in(8), 7);
        assert_eq!(Tick(8).slot_in(8), 0);
        assert_eq!(Tick(1_000_003).slot_in(10), 3);
    }

    #[test]
    fn slot_masked_matches_modulo_for_pow2() {
        let mask = pow2_mask(16).unwrap();
        for t in [0u64, 1, 15, 16, 17, 255, u64::MAX] {
            assert_eq!(Tick(t).slot_masked(mask), Tick(t).slot_in(16));
        }
        assert_eq!(pow2_mask(12), None);
        assert_eq!(pow2_mask(1), Some(0));
    }

    #[test]
    fn table_span_and_ticks_of_roundtrip() {
        assert_eq!(TickDelta::table_span(60), TickDelta(60));
        assert_eq!(ticks_of(0), 0);
        assert_eq!(slot_index(42), 42);
    }

    #[test]
    fn signed_offset_handles_both_directions() {
        assert_eq!(Tick(10).signed_offset_from(Tick(7)), 3);
        assert_eq!(Tick(7).signed_offset_from(Tick(10)), -3);
        assert_eq!(Tick(5).signed_offset_from(Tick(5)), 0);
        assert_eq!(Tick(u64::MAX).signed_offset_from(Tick(0)), i64::MAX);
        assert_eq!(Tick(0).signed_offset_from(Tick(u64::MAX)), i64::MIN);
    }
}
