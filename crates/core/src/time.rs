//! Discrete time model for the timer facility.
//!
//! The paper (§2) defines a timer module whose clock advances in units of a
//! fixed granularity `T`. We model absolute time as [`Tick`] — the number of
//! granularity units since the module was created — and relative time (the
//! `Interval` argument of `START_TIMER`) as [`TickDelta`].
//!
//! Both are thin newtypes over `u64` with checked arithmetic: a timer module
//! is long-lived kernel-style infrastructure, and silent wraparound of the
//! clock would corrupt every outstanding deadline.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute point in discrete time, counted in clock ticks since start.
///
/// `Tick` is totally ordered and supports adding a [`TickDelta`]. Subtracting
/// two `Tick`s yields a [`TickDelta`] and panics (in debug) on underflow —
/// deadlines never precede the time they were computed from.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

/// A relative duration in clock ticks — the `Interval` of `START_TIMER`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TickDelta(pub u64);

impl Tick {
    /// The origin of time for a freshly created timer module.
    pub const ZERO: Tick = Tick(0);

    /// Returns the raw tick count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Advances this instant by one tick.
    ///
    /// # Panics
    ///
    /// Panics if the tick counter would overflow `u64` (after ~584,000 years
    /// at nanosecond granularity; treated as unreachable corruption).
    #[inline]
    #[must_use]
    pub fn next(self) -> Tick {
        Tick(self.0.checked_add(1).expect("tick counter overflow"))
    }

    /// Returns the duration from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    #[must_use]
    pub fn since(self, earlier: Tick) -> TickDelta {
        TickDelta(
            self.0
                .checked_sub(earlier.0)
                .expect("Tick::since: earlier is in the future"),
        )
    }

    /// Returns the duration from `earlier` to `self`, or `None` if `earlier`
    /// is in the future.
    #[inline]
    #[must_use]
    pub fn checked_since(self, earlier: Tick) -> Option<TickDelta> {
        self.0.checked_sub(earlier.0).map(TickDelta)
    }
}

impl TickDelta {
    /// The zero-length interval (rejected by `START_TIMER`; see
    /// [`crate::error::TimerError::ZeroInterval`]).
    pub const ZERO: TickDelta = TickDelta(0);

    /// A one-tick interval, the smallest interval a timer can be set for.
    pub const ONE: TickDelta = TickDelta(1);

    /// Returns the raw tick count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` for the zero-length interval.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two intervals.
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, rhs: TickDelta) -> TickDelta {
        TickDelta(self.0.saturating_sub(rhs.0))
    }
}

impl Add<TickDelta> for Tick {
    type Output = Tick;

    #[inline]
    fn add(self, rhs: TickDelta) -> Tick {
        Tick(self.0.checked_add(rhs.0).expect("deadline overflow"))
    }
}

impl AddAssign<TickDelta> for Tick {
    #[inline]
    fn add_assign(&mut self, rhs: TickDelta) {
        *self = *self + rhs;
    }
}

impl Sub<Tick> for Tick {
    type Output = TickDelta;

    #[inline]
    fn sub(self, rhs: Tick) -> TickDelta {
        self.since(rhs)
    }
}

impl Add<TickDelta> for TickDelta {
    type Output = TickDelta;

    #[inline]
    fn add(self, rhs: TickDelta) -> TickDelta {
        TickDelta(self.0.checked_add(rhs.0).expect("interval overflow"))
    }
}

impl From<u64> for Tick {
    #[inline]
    fn from(v: u64) -> Tick {
        Tick(v)
    }
}

impl From<u64> for TickDelta {
    #[inline]
    fn from(v: u64) -> TickDelta {
        TickDelta(v)
    }
}

impl fmt::Debug for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for TickDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}", self.0)
    }
}

impl fmt::Display for TickDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_ordering_and_arithmetic() {
        let t0 = Tick::ZERO;
        let t5 = t0 + TickDelta(5);
        assert_eq!(t5.as_u64(), 5);
        assert!(t0 < t5);
        assert_eq!(t5.since(t0), TickDelta(5));
        assert_eq!(t5 - t0, TickDelta(5));
        assert_eq!(t5.next().as_u64(), 6);
    }

    #[test]
    fn checked_since_returns_none_for_future() {
        let t0 = Tick(3);
        let t1 = Tick(7);
        assert_eq!(t1.checked_since(t0), Some(TickDelta(4)));
        assert_eq!(t0.checked_since(t1), None);
    }

    #[test]
    #[should_panic(expected = "earlier is in the future")]
    fn since_panics_on_underflow() {
        let _ = Tick(1).since(Tick(2));
    }

    #[test]
    fn delta_helpers() {
        assert!(TickDelta::ZERO.is_zero());
        assert!(!TickDelta::ONE.is_zero());
        assert_eq!(TickDelta(7) + TickDelta(3), TickDelta(10));
        assert_eq!(TickDelta(3).saturating_sub(TickDelta(7)), TickDelta::ZERO);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{:?}", Tick(42)), "t42");
        assert_eq!(format!("{}", Tick(42)), "42");
        assert_eq!(format!("{:?}", TickDelta(9)), "+9");
        assert_eq!(format!("{}", TickDelta(9)), "9");
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Tick(10);
        t += TickDelta(5);
        assert_eq!(t, Tick(15));
    }
}
