//! Two-tier slot-occupancy bitmaps — the modern escape from §7's
//! empty-slot tax.
//!
//! The §7 cost model charges 4 VAX instructions per tick just to discover
//! that a wheel slot is empty, and in the sparse regime (`n ≪ TableSize`)
//! that discovery dominates `PER_TICK_BOOKKEEPING`. Linux's `timers` and
//! tokio's wheel — both descendants of Scheme 7 — answer with per-level
//! occupancy bitmaps: one bit per slot, one summary bit per 64-slot word,
//! so "where is the next non-empty slot?" is a handful of masks and
//! `trailing_zeros` instead of a walk over empty slots.
//!
//! [`OccupancyBitmap`] is that structure: a word tier with bit `s % 64` of
//! `words[s / 64]` set iff slot `s` holds at least one timer, and a summary
//! tier with bit `w % 64` of `summary[w / 64]` set iff `words[w]` is
//! non-zero. [`OccupancyBitmap::next_occupied_delta`] answers the cursor
//! question in wrap-around order, which is what lets `advance_to` jump
//! straight from one occupied slot to the next.
//!
//! Cost accounting stays honest: maintenance and probes return/charge
//! [`bitmap_op`](crate::counters::VaxCostModel::bitmap_op) units into
//! [`OpCounters::bitmap_ops`](crate::counters::OpCounters::bitmap_ops) —
//! a *modern extension* to the §7 table, kept separate so the paper's
//! original columns still reproduce exactly.
//!
//! The wheels embed [`SlotBitmap`], which is this structure when the
//! `bitmap-cursor` feature (default on) is enabled and a zero-sized no-op
//! when it is disabled — the paper-faithful scan then remains the only
//! machinery, benchmarkable as shipped in 1987.

use alloc::vec::Vec;

use crate::time::{slot_index, ticks_of};

/// Bits per tier word.
const WORD_BITS: usize = 64;

/// A two-tier occupancy bitmap over a fixed number of wheel slots.
///
/// See the [module docs](self) for the data layout. All methods are
/// panic-free for in-range slots; `set`/`clear` return the number of
/// modeled bitmap word-operations performed (always 1 here, 0 in the
/// feature-off stub) so callers can charge
/// [`OpCounters::charge_bitmap`](crate::counters::OpCounters::charge_bitmap)
/// without feature gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyBitmap {
    /// Word tier: bit `s % 64` of `words[s / 64]` ⇔ slot `s` occupied.
    words: Vec<u64>,
    /// Summary tier: bit `w % 64` of `summary[w / 64]` ⇔ `words[w] != 0`.
    summary: Vec<u64>,
    /// Number of slots covered.
    len: usize,
}

impl OccupancyBitmap {
    /// Creates an all-empty bitmap covering `len` slots.
    #[must_use]
    pub fn new(len: usize) -> OccupancyBitmap {
        let nwords = len.div_ceil(WORD_BITS);
        let nsummary = nwords.div_ceil(WORD_BITS);
        OccupancyBitmap {
            words: alloc::vec![0; nwords],
            summary: alloc::vec![0; nsummary],
            len,
        }
    }

    /// Number of slots covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bitmap covers zero slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks `slot` occupied. Returns the modeled bitmap-op count (1).
    ///
    /// Idempotent: re-marking an occupied slot is the same word OR.
    pub fn set(&mut self, slot: usize) -> u64 {
        debug_assert!(slot < self.len, "bitmap slot out of range");
        let w = slot / WORD_BITS;
        self.words[w] |= 1u64 << (slot % WORD_BITS);
        self.summary[w / WORD_BITS] |= 1u64 << (w % WORD_BITS);
        1
    }

    /// Marks `slot` empty, folding the summary tier when the word drains.
    /// Returns the modeled bitmap-op count (1).
    pub fn clear(&mut self, slot: usize) -> u64 {
        debug_assert!(slot < self.len, "bitmap slot out of range");
        let w = slot / WORD_BITS;
        self.words[w] &= !(1u64 << (slot % WORD_BITS));
        if self.words[w] == 0 {
            self.summary[w / WORD_BITS] &= !(1u64 << (w % WORD_BITS));
        }
        1
    }

    /// Whether `slot` is marked occupied.
    #[must_use]
    pub fn is_set(&self, slot: usize) -> bool {
        debug_assert!(slot < self.len, "bitmap slot out of range");
        self.words[slot / WORD_BITS] & (1u64 << (slot % WORD_BITS)) != 0
    }

    /// Diagnostic hook for invariant checks: `true` iff the recorded bit
    /// for `slot` equals `occupied`. The feature-off stub always agrees,
    /// so scheme invariants can call this unconditionally.
    #[must_use]
    pub fn agrees_with(&self, slot: usize, occupied: bool) -> bool {
        self.is_set(slot) == occupied
    }

    /// Ticks until an advance-then-process cursor sitting on `from` next
    /// lands on an occupied slot, in `1..=len` wrap-around order (`len`
    /// when `from` itself is the only occupied slot), or `None` when every
    /// slot is empty.
    ///
    /// This is the bitmap analogue of
    /// [`ticks_until_visit`](crate::validate::ticks_until_visit): the
    /// cursor has already processed `from`, so the search starts at
    /// `from + 1` and may wrap all the way back around to `from`.
    #[must_use]
    pub fn next_occupied_delta(&self, from: usize) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let from = from % self.len;
        let start = (from + 1) % self.len;
        let sw = start / WORD_BITS;
        // Tail of the word the search starts in.
        let head = self.words[sw] & (!0u64 << (start % WORD_BITS));
        let found = if head != 0 {
            Some(sw * WORD_BITS + slot_index(u64::from(head.trailing_zeros())))
        } else {
            // Words strictly after the start word, then wrap to the front.
            // Re-scanning the start word on the wrapped pass is sound: its
            // bits at or above `start` were just proven zero, so any hit
            // there is a position strictly below `start`.
            self.next_nonzero_word(sw + 1, self.words.len())
                .or_else(|| self.next_nonzero_word(0, sw + 1))
                .map(|w| w * WORD_BITS + slot_index(u64::from(self.words[w].trailing_zeros())))
        };
        found.map(|slot| {
            let d = (slot + self.len - start) % self.len + 1;
            ticks_of(d)
        })
    }

    /// Smallest `w` in `lo..hi` with `words[w] != 0`, located through the
    /// summary tier (one `trailing_zeros` per 64 words instead of a scan).
    fn next_nonzero_word(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let first = lo / WORD_BITS;
        let last = (hi - 1) / WORD_BITS;
        let mut sw = first;
        while sw <= last {
            let mut chunk = self.summary[sw];
            if sw == first {
                chunk &= !0u64 << (lo % WORD_BITS);
            }
            if sw == last {
                let top = (hi - 1) % WORD_BITS;
                if top < WORD_BITS - 1 {
                    chunk &= (1u64 << (top + 1)) - 1;
                }
            }
            if chunk != 0 {
                return Some(sw * WORD_BITS + slot_index(u64::from(chunk.trailing_zeros())));
            }
            sw += 1;
        }
        None
    }
}

/// The bitmap type the wheels embed: the real [`OccupancyBitmap`] with the
/// `bitmap-cursor` feature (default), letting `advance_to` jump between
/// occupied slots.
#[cfg(feature = "bitmap-cursor")]
pub type SlotBitmap = OccupancyBitmap;

/// The bitmap type the wheels embed: with `bitmap-cursor` disabled this is
/// a zero-sized no-op, so the wheels carry no bitmap state or maintenance
/// cost and the paper-faithful per-tick scan is the only machinery.
#[cfg(not(feature = "bitmap-cursor"))]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotBitmap;

#[cfg(not(feature = "bitmap-cursor"))]
impl SlotBitmap {
    /// No-op constructor (feature off).
    #[must_use]
    pub fn new(_len: usize) -> SlotBitmap {
        SlotBitmap
    }

    /// No-op; returns 0 modeled bitmap-ops so counters stay untouched.
    pub fn set(&mut self, _slot: usize) -> u64 {
        0
    }

    /// No-op; returns 0 modeled bitmap-ops so counters stay untouched.
    pub fn clear(&mut self, _slot: usize) -> u64 {
        0
    }

    /// Always agrees: there is no recorded state to contradict.
    #[must_use]
    pub fn agrees_with(&self, _slot: usize, _occupied: bool) -> bool {
        true
    }

    /// No cursor information without the feature.
    #[must_use]
    pub fn next_occupied_delta(&self, _from: usize) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: linear scan over a bool vector.
    fn model_next(occ: &[bool], from: usize) -> Option<u64> {
        let len = occ.len();
        (1..=len).find(|d| occ[(from + d) % len]).map(ticks_of)
    }

    #[test]
    fn set_clear_is_set_roundtrip() {
        let mut b = OccupancyBitmap::new(200);
        assert_eq!(b.len(), 200);
        assert!(!b.is_empty());
        for s in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!b.is_set(s));
            assert_eq!(b.set(s), 1);
            assert!(b.is_set(s));
        }
        assert_eq!(b.clear(64), 1);
        assert!(!b.is_set(64));
        assert!(b.is_set(63));
        assert!(b.is_set(65));
    }

    #[test]
    fn set_is_idempotent_clear_folds_summary() {
        let mut b = OccupancyBitmap::new(128);
        b.set(100);
        b.set(100);
        assert!(b.is_set(100));
        b.clear(100);
        assert!(!b.is_set(100));
        assert_eq!(b.next_occupied_delta(0), None);
    }

    #[test]
    fn next_occupied_basic_and_wraparound() {
        let mut b = OccupancyBitmap::new(8);
        assert_eq!(b.next_occupied_delta(0), None);
        b.set(3);
        assert_eq!(b.next_occupied_delta(0), Some(3));
        assert_eq!(b.next_occupied_delta(2), Some(1));
        assert_eq!(b.next_occupied_delta(3), Some(8), "own slot = full rev");
        assert_eq!(b.next_occupied_delta(7), Some(4));
        b.set(6);
        assert_eq!(b.next_occupied_delta(3), Some(3));
        assert_eq!(b.next_occupied_delta(6), Some(5));
    }

    #[test]
    fn next_occupied_crosses_word_and_summary_boundaries() {
        // Large enough that the summary tier has multiple words.
        let len = 64 * 64 * 2 + 17;
        let mut b = OccupancyBitmap::new(len);
        let slot = 64 * 64 + 5; // second summary word, first bit region
        b.set(slot);
        assert_eq!(b.next_occupied_delta(0), Some(ticks_of(slot)));
        assert_eq!(b.next_occupied_delta(slot), Some(ticks_of(len)));
        assert_eq!(b.next_occupied_delta(len - 1), Some(ticks_of(slot + 1)));
        b.clear(slot);
        assert_eq!(b.next_occupied_delta(0), None);
    }

    #[test]
    fn agrees_with_reports_divergence() {
        let mut b = OccupancyBitmap::new(16);
        b.set(5);
        assert!(b.agrees_with(5, true));
        assert!(b.agrees_with(6, false));
        assert!(!b.agrees_with(5, false));
        assert!(!b.agrees_with(6, true));
    }

    #[test]
    fn matches_linear_scan_model_under_random_churn() {
        // Deterministic LCG sweep over mixed set/clear/query traffic for
        // several sizes straddling the word and summary boundaries.
        for &len in &[1usize, 2, 63, 64, 65, 127, 129, 4096, 4100] {
            let mut b = OccupancyBitmap::new(len);
            let mut occ = alloc::vec![false; len];
            let mut x = 0x2545_F491_4F6C_DD1Du64;
            for step in 0..2_000u32 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let slot = slot_index(x % ticks_of(len));
                if x & (1 << 40) == 0 {
                    b.set(slot);
                    occ[slot] = true;
                } else {
                    b.clear(slot);
                    occ[slot] = false;
                }
                let from = slot_index((x >> 20) % ticks_of(len));
                assert_eq!(
                    b.next_occupied_delta(from),
                    model_next(&occ, from),
                    "len {len} step {step} from {from}"
                );
                assert_eq!(b.is_set(slot), occ[slot]);
            }
        }
    }

    #[test]
    fn zero_len_is_inert() {
        let b = OccupancyBitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.next_occupied_delta(0), None);
    }
}
