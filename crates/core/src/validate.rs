//! Structural invariant checking for every timer scheme.
//!
//! Each scheme in this workspace maintains internal invariants that the
//! paper's correctness arguments lean on — slot-index congruence
//! (`deadline ≡ slot (mod TableSize)`), rounds/remaining-revolution
//! consistency, doubly-linked-list integrity, generational-slab accounting,
//! per-bucket sortedness. Ordinary tests observe only the *trace* (which
//! timers fire when); a structural bug can hide behind a correct trace for a
//! long time. This module makes the structure itself checkable:
//!
//! * [`InvariantCheck`] — implemented by all seven `tw-core` schemes (and by
//!   `ShardedWheel`/`MpscWheel` in `tw-concurrent`, `BinaryHeapScheme` in
//!   `tw-baselines`), it revalidates every derived invariant of the resting
//!   state and reports the first [`InvariantViolation`] found.
//! * [`Checked`] — a wrapper that delegates every [`TimerScheme`] operation
//!   and re-runs `check_invariants` after each one, panicking on the first
//!   violation. The oracle-equivalence suite drives every scheme through
//!   `Checked` so a structural corruption is caught at the operation that
//!   introduced it, not thousands of ticks later.
//!
//! The invariant catalog per scheme is documented in DESIGN.md
//! §Verification.

use alloc::string::String;

use crate::scheme::{Expired, TimerScheme};
use crate::time::{Tick, TickDelta};
use crate::{OpCounters, TimerError, TimerHandle};

/// A structural invariant failure, carrying the scheme name and a
/// description of the first violated property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The reporting scheme's [`TimerScheme::name`].
    pub scheme: &'static str,
    /// Human-readable description of the violated property.
    pub detail: String,
}

impl InvariantViolation {
    /// Creates a violation report.
    #[must_use]
    pub fn new(scheme: &'static str, detail: String) -> InvariantViolation {
        InvariantViolation { scheme, detail }
    }
}

impl core::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: invariant violated: {}", self.scheme, self.detail)
    }
}

#[cfg(feature = "std")]
impl std::error::Error for InvariantViolation {}

/// Schemes whose resting-state structure can be revalidated from scratch.
///
/// `check_invariants` must be callable between any two operations (never
/// mid-operation) and must not mutate observable state. Implementations
/// walk the entire structure, so the check is O(outstanding) or worse —
/// it is a test/debug facility, not a production fast path.
pub trait InvariantCheck {
    /// Revalidates every structural invariant.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    fn check_invariants(&self) -> Result<(), InvariantViolation>;
}

/// A [`TimerScheme`] wrapper that re-checks structural invariants after
/// every operation.
///
/// Construction also validates, so a `Checked<S>` is structurally sound at
/// every observable point of its life.
///
/// # Panics
///
/// Every delegated operation panics with the [`InvariantViolation`] if the
/// inner scheme's structure is corrupt afterwards.
pub struct Checked<S> {
    inner: S,
}

impl<S: InvariantCheck> Checked<S> {
    /// Wraps `inner`, validating it immediately.
    ///
    /// # Panics
    ///
    /// Panics if `inner` already violates an invariant.
    #[must_use]
    pub fn new(inner: S) -> Checked<S> {
        let checked = Checked { inner };
        checked.assert_valid();
        checked
    }

    /// Unwraps the inner scheme.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Borrows the inner scheme.
    #[must_use]
    pub fn get(&self) -> &S {
        &self.inner
    }

    fn assert_valid(&self) {
        if let Err(violation) = self.inner.check_invariants() {
            // tw-analyze: allow(TW002, reason = "the Checked harness exists to panic loudly the moment a structural invariant breaks; it is a test-and-debug wrapper, never the production configuration")
            panic!("{violation}");
        }
    }
}

impl<S: InvariantCheck> InvariantCheck for Checked<S> {
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.inner.check_invariants()
    }
}

impl<T, S: TimerScheme<T> + InvariantCheck> TimerScheme<T> for Checked<S> {
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError> {
        let result = self.inner.start_timer(interval, payload);
        self.assert_valid();
        result
    }

    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError> {
        let result = self.inner.stop_timer(handle);
        self.assert_valid();
        result
    }

    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        let result = self.inner.restart_timer(handle, interval);
        self.assert_valid();
        result
    }

    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>)) {
        self.inner.tick(expired);
        self.assert_valid();
    }

    fn advance_to_with(&mut self, deadline: Tick, expired: &mut dyn FnMut(Expired<T>)) {
        // Delegate to the inner scheme's (possibly bitmap-accelerated)
        // batched path rather than the per-tick default, so the fast path
        // itself runs under validation.
        self.inner.advance_to_with(deadline, expired);
        self.assert_valid();
    }

    fn now(&self) -> Tick {
        self.inner.now()
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }

    fn counters(&self) -> &OpCounters {
        self.inner.counters()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }

    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        self.inner.set_arena_capacity(limit)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Ticks until the cursor of an advance-then-process wheel next lands on
/// `slot`: in `1..=table_size`, with a full revolution when the cursor sits
/// on `slot` right now (its visit for the current tick has completed).
///
/// Shared by the slot-congruence checks of Schemes 4–6, the hybrid, and
/// `tw-concurrent`'s sharded wheel.
#[must_use]
pub fn ticks_until_visit(cursor: u64, slot: u64, table_size: u64) -> u64 {
    let d = (slot + table_size - cursor % table_size) % table_size;
    if d == 0 {
        table_size
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_until_visit_covers_wraparound() {
        assert_eq!(ticks_until_visit(0, 1, 4), 1);
        assert_eq!(ticks_until_visit(3, 0, 4), 1);
        assert_eq!(ticks_until_visit(2, 2, 4), 4, "own slot = full revolution");
        assert_eq!(ticks_until_visit(1, 0, 4), 3);
        // Cursor expressed as an absolute tick works too.
        assert_eq!(ticks_until_visit(9, 2, 4), 1);
    }

    #[test]
    fn violation_display_names_the_scheme() {
        let v = InvariantViolation::new("scheme6(hashed-unsorted)", String::from("boom"));
        let msg = alloc::format!("{v}");
        assert!(msg.contains("scheme6"));
        assert!(msg.contains("boom"));
    }

    #[test]
    fn checked_delegates_and_validates() {
        use crate::model::OracleScheme;
        use crate::scheme::TimerSchemeExt;

        let mut w = Checked::new(OracleScheme::<u32>::new());
        let h = w.start_timer(TickDelta(2), 7).unwrap();
        assert_eq!(w.outstanding(), 1);
        assert_eq!(w.stop_timer(h), Ok(7));
        w.start_timer(TickDelta(1), 9).unwrap();
        let fired = w.collect_ticks(1);
        assert_eq!(fired.len(), 1);
        assert_eq!(w.into_inner().outstanding(), 0);
    }
}
