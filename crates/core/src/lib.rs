//! Hashed and hierarchical timing wheels — the timer facility of
//! Varghese & Lauck, *"Hashed and Hierarchical Timing Wheels: Data
//! Structures for the Efficient Implementation of a Timer Facility"*
//! (SOSP 1987).
//!
//! This crate holds the paper's model and its contribution:
//!
//! * the §2 four-routine timer-module model as the [`TimerScheme`] trait
//!   (and the paper-exact `Request_ID`-keyed interface in [`facility`]),
//! * Scheme 4 (basic timing wheel), Scheme 5 (hashed wheel, sorted
//!   buckets), Scheme 6 (hashed wheel, unsorted buckets) and Scheme 7
//!   (hierarchical wheels) in [`wheel`],
//! * the §7 instruction-cost accounting in [`counters`],
//! * the safe intrusive-list substrate in [`arena`], and
//! * a trivially-correct reference implementation in [`model`] used as the
//!   workspace-wide property-test oracle.
//!
//! The baseline comparators the paper measures against (Schemes 1–3 and the
//! classic delta list) live in the companion crate `tw-baselines`; discrete
//! event simulation, networking, hardware-assist and SMP substrates in
//! `tw-des`, `tw-netsim`, `tw-hwsim` and `tw-concurrent`.
//!
//! # Quickstart
//!
//! ```
//! use tw_core::wheel::HashedWheelUnsorted;
//! use tw_core::{TickDelta, TimerScheme, TimerSchemeExt};
//!
//! // A 256-slot Scheme 6 wheel: O(1) start/stop, O(n/256) per-tick work.
//! let mut timers: HashedWheelUnsorted<&str> = HashedWheelUnsorted::new(256);
//! let ack = timers.start_timer(TickDelta(150), "retransmit pkt 7").unwrap();
//! timers.start_timer(TickDelta(300), "keepalive").unwrap();
//!
//! // The ack arrived: stop the retransmission timer in O(1).
//! timers.stop_timer(ack).unwrap();
//!
//! // Drive the clock; only the keepalive fires.
//! let fired = timers.collect_ticks(300);
//! assert_eq!(fired.len(), 1);
//! assert_eq!(fired[0].payload, "keepalive");
//! ```
//!
//! # Safety posture
//!
//! `unsafe` is forbidden crate-wide. The classic raw-pointer intrusive
//! lists of §3.2 are replaced by the index-based generational slab in
//! [`arena`], so O(1) `STOP_TIMER` needs no pointer aliasing. On top of
//! memory safety, *structural* correctness is checkable at runtime: every
//! scheme implements [`validate::InvariantCheck`], and the
//! [`validate::Checked`] wrapper revalidates the full structure after every
//! operation (see DESIGN.md §Verification).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

pub mod arena;
pub mod bitmap;
pub mod counters;
pub mod error;
#[cfg(feature = "std")]
pub mod facility;
pub mod handle;
pub mod model;
pub mod observe;
pub mod scheme;
pub mod time;
pub mod validate;
pub mod wheel;

pub use bitmap::{OccupancyBitmap, SlotBitmap};
pub use counters::{OpCounters, VaxCostModel};
pub use error::TimerError;
pub use handle::{RequestId, TimerHandle};
pub use model::OracleScheme;
pub use observe::{NoopObserver, Observed, Observer};
pub use scheme::{DeadlinePeek, Expired, TimerScheme, TimerSchemeExt};
pub use time::{Tick, TickDelta};
pub use validate::{Checked, InvariantCheck, InvariantViolation};
