//! The four-routine timer-module model of §2, as a Rust trait.
//!
//! The paper defines a timer module by four routines:
//!
//! * `START_TIMER(Interval, Request_ID, Expiry_Action)` →
//!   [`TimerScheme::start_timer`] (the request-id ↔ handle mapping lives in
//!   [`TimerFacility`](crate::facility::TimerFacility)),
//! * `STOP_TIMER(Request_ID)` → [`TimerScheme::stop_timer`],
//! * `PER_TICK_BOOKKEEPING` → [`TimerScheme::tick`],
//! * `EXPIRY_PROCESSING` → the `expired` callback passed to `tick`.
//!
//! Every scheme in this workspace — the wheels in this crate, the baselines
//! in `tw-baselines`, the simulation wheel in `tw-des`, the sharded wheel in
//! `tw-concurrent` — implements this trait, so the experiment harness and
//! the property-test oracle treat them interchangeably.

use alloc::vec::Vec;

use crate::counters::OpCounters;
use crate::handle::TimerHandle;
use crate::time::{Tick, TickDelta};
use crate::TimerError;

/// A timer that has reached `EXPIRY_PROCESSING`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired<T> {
    /// The handle the client held (now stale).
    pub handle: TimerHandle,
    /// The payload supplied to `start_timer` (the paper's `Expiry_Action`).
    pub payload: T,
    /// The tick the timer was scheduled to expire at (`start + interval`).
    pub deadline: Tick,
    /// The tick the timer actually fired at. Equals `deadline` for the exact
    /// schemes; may be earlier/later for the reduced-precision hierarchical
    /// variants (§6.2, Wick Nichols), bounded by the level granularity.
    pub fired_at: Tick,
}

impl<T> Expired<T> {
    /// Signed firing error in ticks (`fired_at - deadline`); negative means
    /// the timer fired early. Saturates at the `i64` extremes.
    #[must_use]
    pub fn error(&self) -> i64 {
        self.fired_at.signed_offset_from(self.deadline)
    }
}

/// A timer scheme: one concrete implementation of the §2 timer module.
///
/// `T` is the client payload delivered on expiry. Implementations must
/// uphold the *trace-equivalence contract* checked by the workspace test
/// suite: for any sequence of `start_timer`/`stop_timer`/`tick` calls, an
/// exact scheme fires exactly the set of non-stopped timers, each at its
/// deadline tick, during the `tick` call that advances the clock to that
/// deadline.
pub trait TimerScheme<T> {
    /// `START_TIMER` (§2): schedules expiry `interval` ticks after the
    /// current time and returns a handle for `stop_timer`.
    ///
    /// # Errors
    ///
    /// * [`TimerError::ZeroInterval`] if `interval` is zero.
    /// * [`TimerError::IntervalOutOfRange`] if the scheme's range is bounded,
    ///   the interval exceeds it, and the overflow policy is `Reject`.
    /// * [`TimerError::DeadlineOverflow`] if `now + interval` exceeds the
    ///   representable tick range.
    fn start_timer(&mut self, interval: TickDelta, payload: T) -> Result<TimerHandle, TimerError>;

    /// `STOP_TIMER` (§2): cancels an outstanding timer, returning its
    /// payload.
    ///
    /// # Errors
    ///
    /// [`TimerError::Stale`] if the timer already expired or was stopped.
    fn stop_timer(&mut self, handle: TimerHandle) -> Result<T, TimerError>;

    /// UPDATE (the dynamic-update routine of "Design of a Timer Queue
    /// Supporting Dynamic Update Operations"): re-arms an outstanding timer
    /// to expire `interval` ticks after the current time, keeping the same
    /// handle valid — the node is unlinked from its current position and
    /// relinked at the new deadline without passing through the arena's
    /// free list, so no generation bump and no allocation occur.
    ///
    /// Validation happens *before* any unlink: a failed restart leaves the
    /// timer exactly where it was, still armed for its original deadline.
    ///
    /// The default body rejects the call so external implementors opt in
    /// explicitly; every scheme in this workspace (the oracle and all seven
    /// wheels) overrides it with a pure unlink+relink.
    ///
    /// # Errors
    ///
    /// * [`TimerError::UpdateUnsupported`] if the scheme has no update path.
    /// * [`TimerError::Stale`] if the timer already expired or was stopped.
    /// * The same [`TimerError::ZeroInterval`] /
    ///   [`TimerError::IntervalOutOfRange`] /
    ///   [`TimerError::DeadlineOverflow`] contract as `start_timer` for the
    ///   new interval.
    fn restart_timer(
        &mut self,
        handle: TimerHandle,
        interval: TickDelta,
    ) -> Result<(), TimerError> {
        let _ = (handle, interval);
        Err(TimerError::UpdateUnsupported)
    }

    /// `PER_TICK_BOOKKEEPING` (§2): advances the clock by one tick and
    /// delivers every timer expiring at the new time to `expired`
    /// (`EXPIRY_PROCESSING`).
    fn tick(&mut self, expired: &mut dyn FnMut(Expired<T>));

    /// Batched `PER_TICK_BOOKKEEPING`: advances the clock to `deadline`
    /// (a no-op when `deadline <= now`), delivering every expiry on the way
    /// in tick order.
    ///
    /// The default runs `tick` once per elapsed tick, which is the paper's
    /// semantics by construction. Wheels override it under the
    /// `bitmap-cursor` feature to jump between occupied slots via their
    /// [occupancy bitmaps](crate::bitmap), skipping the per-tick empty-slot
    /// test entirely; the trace delivered to `expired` must be identical
    /// either way (pinned by the oracle-equivalence differential suite).
    fn advance_to_with(&mut self, deadline: Tick, expired: &mut dyn FnMut(Expired<T>)) {
        // tw-analyze: fact(loop_bounded, reason = "one tick() per elapsed virtual tick; the paper's PER_TICK envelope is priced per tick, and a batched advance is exactly (deadline - now) of them")
        while self.now() < deadline {
            self.tick(expired);
        }
    }

    /// Caps the scheme's node arena at `limit` live timers, returning `true`
    /// when the scheme supports a ceiling. Once the cap is reached,
    /// `start_timer` reports [`TimerError::Exhausted`] instead of growing —
    /// the admission-control knob a bounded host (or the tw-async driver)
    /// turns before accepting work.
    ///
    /// The default reports `false` (no arena to cap), so baselines and
    /// external implementors opt in explicitly; every arena-backed wheel in
    /// this workspace overrides it with a delegation to
    /// [`TimerArena::set_capacity_limit`](crate::arena::TimerArena::set_capacity_limit).
    fn set_arena_capacity(&mut self, limit: usize) -> bool {
        let _ = limit;
        false
    }

    /// The current absolute time (number of `tick` calls so far).
    fn now(&self) -> Tick;

    /// Number of outstanding timers.
    fn outstanding(&self) -> usize;

    /// Work counters accumulated since creation (or the last reset).
    fn counters(&self) -> &OpCounters;

    /// Resets the work counters.
    fn reset_counters(&mut self);

    /// Short human-readable scheme name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Schemes that can report their earliest outstanding deadline in O(1) or
/// O(log n) — ordered lists, heaps, trees, and the oracle.
///
/// This is what lets a host skip clock interrupts entirely when paired with
/// single-timer hardware (§3.2: "the hardware timer is set to expire at the
/// time at which the timer at the head of the list is due to expire"), and
/// what the event-driven time-flow mechanism of `tw-des` jumps on. Wheels
/// deliberately do *not* implement it: finding their minimum requires a scan,
/// which is the §4.2 trade-off this workspace measures.
pub trait DeadlinePeek {
    /// The earliest outstanding deadline, or `None` when no timers are set.
    fn next_deadline(&self) -> Option<Tick>;
}

/// Extension helpers available on every scheme.
pub trait TimerSchemeExt<T>: TimerScheme<T> {
    /// Runs `n` ticks, discarding expiries.
    fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick(&mut |_| {});
        }
    }

    /// Runs `n` ticks, collecting expiries in order.
    fn collect_ticks(&mut self, n: u64) -> Vec<Expired<T>> {
        let mut out = Vec::new();
        for _ in 0..n {
            self.tick(&mut |e| out.push(e));
        }
        out
    }

    /// Advances until the clock reaches `deadline`, collecting expiries.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is in the past.
    fn advance_to(&mut self, deadline: Tick) -> Vec<Expired<T>> {
        // `since` keeps the documented panic-on-past contract; the actual
        // advance goes through the scheme's (possibly bitmap-accelerated)
        // batched path.
        let _gap = deadline.since(self.now());
        let mut out = Vec::new();
        self.advance_to_with(deadline, &mut |e| out.push(e));
        out
    }
}

impl<T, S: TimerScheme<T> + ?Sized> TimerSchemeExt<T> for S {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expired_error_sign() {
        let e = Expired {
            handle: TimerHandle::from_raw(0, 0),
            payload: (),
            deadline: Tick(10),
            fired_at: Tick(12),
        };
        assert_eq!(e.error(), 2);
        let e = Expired {
            fired_at: Tick(8),
            ..e
        };
        assert_eq!(e.error(), -2);
        let e = Expired {
            fired_at: Tick(10),
            ..e
        };
        assert_eq!(e.error(), 0);
    }
}
