//! Networking substrate for the timing-wheels workspace — the paper's §1
//! motivating workloads, runnable over any timer scheme.
//!
//! * [`transport`] — a reliable stop-and-wait transport over a lossy
//!   network: per-connection retransmission, keepalive, delayed-ack and
//!   time-wait timers (the "server with 200 connections and 3 timers per
//!   connection" scenario).
//! * [`gbn`] — a Go-Back-N sliding-window transport: one long-lived,
//!   repeatedly restarted retransmission timer per connection, goodput
//!   scaling with the bandwidth-delay product.
//! * [`rate`] — token-bucket rate-based flow control, the "timers that
//!   almost always expire" class.

#![warn(missing_docs)]

pub mod gbn;
pub mod rate;
pub mod transport;

pub use gbn::{GbnConfig, GbnEvent, GbnMetrics, GbnSim};
pub use rate::{run_rate_control, RateConfig, RateReport, TokenBucket};
pub use transport::{Event, NetConfig, NetMetrics, NetSim, TimerKind};
