//! A reliable stop-and-wait transport over a lossy network, driven entirely
//! by a pluggable timer scheme.
//!
//! This is the paper's §1 motivating workload made concrete: "consider a
//! server with 200 connections and 3 timers per connection". Each
//! connection here uses four timers —
//!
//! * **retransmission** (armed with the first segment, then *re-armed in
//!   place* by every ack that advances the window: the "rarely expire"
//!   failure-recovery class, driven by UPDATE rather than STOP + START),
//! * **keepalive** (likewise restarted in place on every ack),
//! * **delayed ack** (receiver side),
//! * **time-wait** (connection teardown: always expires),
//!
//! and both the protocol timers *and* the network's propagation delays are
//! events in one [`TimerScheme`], so replaying the same scenario over
//! Scheme 2 vs. Scheme 6 measures exactly the facility the paper argues
//! about. Timer-op rates, retransmissions and goodput come out as
//! [`NetMetrics`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tw_core::{Tick, TickDelta, TimerHandle, TimerScheme};

/// Which protocol timer fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Sender retransmission timeout.
    Retransmit,
    /// Sender keepalive probe.
    KeepAlive,
    /// Receiver delayed acknowledgment.
    DelayedAck,
    /// Teardown quiet period (always expires).
    TimeWait,
}

/// What travels through the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Data segment with this sequence number.
    Data(u64),
    /// Cumulative acknowledgment: receiver expects this sequence next.
    Ack(u64),
    /// Keepalive probe.
    Probe,
}

/// One scheduled event: a timer firing or a segment arriving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Protocol timer for a connection.
    Timer(u32, TimerKind),
    /// Segment delivery to the server (receiver) side of a connection.
    ToServer(u32, Segment),
    /// Segment delivery to the client (sender) side of a connection.
    ToClient(u32, Segment),
}

/// Network and protocol parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Independent loss probability per segment transmission.
    pub loss: f64,
    /// One-way delay, uniform in `[delay_lo, delay_hi]` ticks.
    pub delay_lo: u64,
    /// Upper delay bound (inclusive).
    pub delay_hi: u64,
    /// Base retransmission timeout in ticks (doubles per back-off, capped).
    pub rto: u64,
    /// Maximum back-off doublings.
    pub max_backoff: u32,
    /// Keepalive interval in ticks.
    pub keepalive: u64,
    /// Delayed-ack hold-off in ticks.
    pub delayed_ack: u64,
    /// TIME-WAIT duration in ticks.
    pub time_wait: u64,
    /// Segments each connection must deliver.
    pub segments_per_conn: u64,
    /// RNG seed (loss and delay draws).
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            loss: 0.05,
            delay_lo: 10,
            delay_hi: 40,
            rto: 200,
            max_backoff: 6,
            keepalive: 2_000,
            delayed_ack: 20,
            time_wait: 500,
            segments_per_conn: 50,
            seed: 1987,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Active,
    TimeWait,
    Closed,
}

struct Conn {
    state: ConnState,
    // Sender.
    next_seq: u64,
    acked: u64,
    backoff: u32,
    retransmit: Option<TimerHandle>,
    keepalive: Option<TimerHandle>,
    time_wait: Option<TimerHandle>,
    // Receiver.
    recv_next: u64,
    delayed_ack: Option<TimerHandle>,
}

/// Aggregate simulation results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Distinct data segments delivered in order.
    pub delivered: u64,
    /// Data segment (re)transmissions beyond the first send.
    pub retransmissions: u64,
    /// Keepalive probes sent.
    pub probes: u64,
    /// Acks sent by the receiver side.
    pub acks_sent: u64,
    /// Protocol timers started fresh (first arm, or re-arm after the old
    /// handle went stale).
    pub timer_starts: u64,
    /// Timer UPDATEs: a pending retransmission or keepalive timer re-armed
    /// in place by an ack — one relink, not a stop + start pair.
    pub timer_restarts: u64,
    /// Protocol timers stopped before expiry.
    pub timer_stops: u64,
    /// Protocol timers that expired.
    pub timer_expiries: u64,
    /// Segments lost in the network.
    pub losses: u64,
    /// Tick at which the last connection closed (0 if none closed).
    pub finished_at: u64,
    /// Connections fully closed by the horizon.
    pub closed: u64,
}

/// The transport simulation. See the [module docs](self).
pub struct NetSim<S> {
    scheme: S,
    conns: Vec<Conn>,
    cfg: NetConfig,
    rng: SmallRng,
    /// Metrics accumulated so far.
    pub metrics: NetMetrics,
}

impl<S: TimerScheme<Event>> NetSim<S> {
    /// Creates a simulation of `connections` concurrent transfers over the
    /// given timer scheme.
    pub fn new(scheme: S, connections: usize, cfg: NetConfig) -> NetSim<S> {
        let conns = (0..connections)
            .map(|_| Conn {
                state: ConnState::Active,
                next_seq: 0,
                acked: 0,
                backoff: 0,
                retransmit: None,
                keepalive: None,
                time_wait: None,
                recv_next: 0,
                delayed_ack: None,
            })
            .collect();
        let rng = SmallRng::seed_from_u64(cfg.seed);
        NetSim {
            scheme,
            conns,
            cfg,
            rng,
            metrics: NetMetrics::default(),
        }
    }

    /// Borrows the underlying scheme (e.g. for counters).
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Runs until every connection closes or the horizon is reached.
    /// Returns the metrics.
    pub fn run(&mut self, horizon: Tick) -> &NetMetrics {
        // Kick every connection: send segment 0 and arm the keepalive.
        for c in 0..u32::try_from(self.conns.len()).unwrap_or(u32::MAX) {
            self.send_data(c, 0);
            self.restart_keepalive(c);
        }
        while self.scheme.now() < horizon && self.metrics.closed < self.conns.len() as u64 {
            let mut due = Vec::new();
            self.scheme.tick(&mut |e| due.push(e.payload));
            for event in due {
                self.handle(event);
            }
        }
        &self.metrics
    }

    fn delay(&mut self) -> TickDelta {
        TickDelta(self.rng.gen_range(self.cfg.delay_lo..=self.cfg.delay_hi))
    }

    /// Puts a segment on the wire (or loses it).
    fn transmit(&mut self, event: Event) {
        if self.rng.gen_bool(self.cfg.loss) {
            self.metrics.losses += 1;
            return;
        }
        let delay = self.delay();
        self.scheme
            .start_timer(delay, event)
            .expect("network delay within scheme range");
    }

    fn start_protocol_timer(&mut self, conn: u32, kind: TimerKind, after: u64) -> TimerHandle {
        self.metrics.timer_starts += 1;
        self.scheme
            .start_timer(TickDelta(after), Event::Timer(conn, kind))
            .expect("protocol timeout within scheme range")
    }

    fn stop_protocol_timer(&mut self, handle: Option<TimerHandle>) {
        if let Some(h) = handle {
            if self.scheme.stop_timer(h).is_ok() {
                self.metrics.timer_stops += 1;
            }
        }
    }

    fn send_data(&mut self, conn: u32, seq: u64) {
        self.transmit(Event::ToServer(conn, Segment::Data(seq)));
        let backoff = self.conns[conn as usize].backoff.min(self.cfg.max_backoff);
        let rto = self.cfg.rto << backoff;
        let h = self.start_protocol_timer(conn, TimerKind::Retransmit, rto);
        self.conns[conn as usize].retransmit = Some(h);
    }

    /// Re-arms the keepalive: a pure relink (UPDATE) when a probe timer is
    /// still pending, a fresh START otherwise.
    fn restart_keepalive(&mut self, conn: u32) {
        if let Some(h) = self.conns[conn as usize].keepalive {
            if self
                .scheme
                .restart_timer(h, TickDelta(self.cfg.keepalive))
                .is_ok()
            {
                self.metrics.timer_restarts += 1;
                return;
            }
            // Stale handle: the keepalive fired in the same expiry batch as
            // this ack. Fall through to a fresh arm.
            self.conns[conn as usize].keepalive = None;
        }
        let h = self.start_protocol_timer(conn, TimerKind::KeepAlive, self.cfg.keepalive);
        self.conns[conn as usize].keepalive = Some(h);
    }

    /// Transmits `seq` and re-arms the retransmission timer: a pure relink
    /// (UPDATE) when the previous segment's timer is still pending, a fresh
    /// START only when it is not (the timeout fired in the same expiry batch
    /// as the ack that advanced the window).
    fn send_next_data(&mut self, conn: u32, seq: u64) {
        if let Some(h) = self.conns[conn as usize].retransmit {
            let backoff = self.conns[conn as usize].backoff.min(self.cfg.max_backoff);
            let rto = self.cfg.rto << backoff;
            if self.scheme.restart_timer(h, TickDelta(rto)).is_ok() {
                self.metrics.timer_restarts += 1;
                self.transmit(Event::ToServer(conn, Segment::Data(seq)));
                return;
            }
            self.conns[conn as usize].retransmit = None;
        }
        self.send_data(conn, seq);
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::ToServer(conn, seg) => self.on_server_receive(conn, seg),
            Event::ToClient(conn, seg) => self.on_client_receive(conn, seg),
            Event::Timer(conn, kind) => self.on_timer(conn, kind),
        }
    }

    fn on_server_receive(&mut self, conn: u32, seg: Segment) {
        match seg {
            Segment::Data(seq) => {
                let expected = self.conns[conn as usize].recv_next;
                if seq == expected {
                    self.conns[conn as usize].recv_next = seq + 1;
                    self.metrics.delivered += 1;
                    // Delay the ack to batch with potential follow-ups; a
                    // duplicate arriving meanwhile forces an immediate ack.
                    if self.conns[conn as usize].delayed_ack.is_none() {
                        let h = self.start_protocol_timer(
                            conn,
                            TimerKind::DelayedAck,
                            self.cfg.delayed_ack,
                        );
                        self.conns[conn as usize].delayed_ack = Some(h);
                    }
                } else {
                    // Out of order / duplicate: ack immediately, cancelling
                    // any pending delayed ack.
                    let pending = self.conns[conn as usize].delayed_ack.take();
                    self.stop_protocol_timer(pending);
                    self.send_ack(conn);
                }
            }
            Segment::Probe => {
                let pending = self.conns[conn as usize].delayed_ack.take();
                self.stop_protocol_timer(pending);
                self.send_ack(conn);
            }
            Segment::Ack(_) => unreachable!("server never receives acks"),
        }
    }

    fn send_ack(&mut self, conn: u32) {
        let next = self.conns[conn as usize].recv_next;
        self.metrics.acks_sent += 1;
        self.transmit(Event::ToClient(conn, Segment::Ack(next)));
    }

    fn on_client_receive(&mut self, conn: u32, seg: Segment) {
        let Segment::Ack(n) = seg else {
            unreachable!("client only receives acks");
        };
        let c = &mut self.conns[conn as usize];
        if c.state != ConnState::Active || n <= c.acked {
            return; // stale or duplicate ack
        }
        c.acked = n;
        c.backoff = 0;
        if n >= self.cfg.segments_per_conn {
            // All data acknowledged: enter TIME-WAIT. The retransmission
            // and keepalive timers die for real here — the one place STOP
            // is still the right operation.
            let c = &mut self.conns[conn as usize];
            c.state = ConnState::TimeWait;
            let rt = c.retransmit.take();
            let ka = c.keepalive.take();
            self.stop_protocol_timer(rt);
            self.stop_protocol_timer(ka);
            let h = self.start_protocol_timer(conn, TimerKind::TimeWait, self.cfg.time_wait);
            self.conns[conn as usize].time_wait = Some(h);
        } else {
            // Progress: both ack-driven timers are re-armed in place.
            self.restart_keepalive(conn);
            self.conns[conn as usize].next_seq = n;
            self.send_next_data(conn, n);
        }
    }

    fn on_timer(&mut self, conn: u32, kind: TimerKind) {
        self.metrics.timer_expiries += 1;
        match kind {
            TimerKind::Retransmit => {
                self.conns[conn as usize].retransmit = None;
                if self.conns[conn as usize].state != ConnState::Active {
                    return;
                }
                self.conns[conn as usize].backoff += 1;
                self.metrics.retransmissions += 1;
                let seq = self.conns[conn as usize].acked;
                self.send_data(conn, seq);
            }
            TimerKind::KeepAlive => {
                self.conns[conn as usize].keepalive = None;
                if self.conns[conn as usize].state != ConnState::Active {
                    return;
                }
                self.metrics.probes += 1;
                self.transmit(Event::ToServer(conn, Segment::Probe));
                let h = self.start_protocol_timer(conn, TimerKind::KeepAlive, self.cfg.keepalive);
                self.conns[conn as usize].keepalive = Some(h);
            }
            TimerKind::DelayedAck => {
                self.conns[conn as usize].delayed_ack = None;
                self.send_ack(conn);
            }
            TimerKind::TimeWait => {
                let c = &mut self.conns[conn as usize];
                c.time_wait = None;
                c.state = ConnState::Closed;
                self.metrics.closed += 1;
                self.metrics.finished_at = self.scheme.now().as_u64();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_core::wheel::{HashedWheelUnsorted, HierarchicalWheel, LevelSizes};
    use tw_core::OracleScheme;

    fn quick_cfg() -> NetConfig {
        NetConfig {
            segments_per_conn: 20,
            ..NetConfig::default()
        }
    }

    #[test]
    fn lossless_transfer_completes_without_retransmission() {
        let cfg = NetConfig {
            loss: 0.0,
            ..quick_cfg()
        };
        let mut sim = NetSim::new(HashedWheelUnsorted::new(256), 4, cfg);
        let m = sim.run(Tick(1_000_000)).clone();
        assert_eq!(m.closed, 4);
        assert_eq!(m.delivered, 4 * 20);
        assert_eq!(m.retransmissions, 0);
        assert_eq!(m.losses, 0);
        assert!(m.finished_at > 0);
    }

    #[test]
    fn lossy_transfer_recovers_via_retransmission() {
        let cfg = NetConfig {
            loss: 0.25,
            ..quick_cfg()
        };
        let mut sim = NetSim::new(HashedWheelUnsorted::new(256), 8, cfg);
        let m = sim.run(Tick(5_000_000)).clone();
        assert_eq!(m.closed, 8, "heavy loss but everything completes");
        assert_eq!(m.delivered, 8 * 20);
        assert!(m.retransmissions > 0, "loss must trigger retransmissions");
        assert!(m.losses > 0);
    }

    #[test]
    fn most_timers_are_defused_not_expired() {
        // §1: acknowledgment timers "almost always" never expire. With
        // restart-on-ack the dominant defusing operation is UPDATE (re-arm
        // in place), not STOP; together they dwarf expiries under mild loss.
        let cfg = NetConfig {
            loss: 0.02,
            ..quick_cfg()
        };
        let mut sim = NetSim::new(HashedWheelUnsorted::new(256), 16, cfg);
        let m = sim.run(Tick(5_000_000)).clone();
        assert!(
            m.timer_restarts + m.timer_stops > m.timer_expiries,
            "restarts {} + stops {} vs expiries {}",
            m.timer_restarts,
            m.timer_stops,
            m.timer_expiries
        );
        assert!(
            m.timer_restarts > m.timer_stops,
            "acks re-arm in place: restarts {} should dominate stops {}",
            m.timer_restarts,
            m.timer_stops
        );
    }

    #[test]
    fn acks_restart_timers_in_place() {
        // Lossless single connection, 20 segments: the first segment STARTs
        // the retransmission and keepalive timers; acks 1..=19 each re-arm
        // both in place (38 UPDATEs); the final ack STOPs both on the way
        // into TIME-WAIT. No retransmissions, exactly two stops.
        let cfg = NetConfig {
            loss: 0.0,
            ..quick_cfg()
        };
        let mut sim = NetSim::new(HashedWheelUnsorted::new(256), 1, cfg);
        let m = sim.run(Tick(1_000_000)).clone();
        assert_eq!(m.closed, 1);
        assert_eq!(m.timer_restarts, 38, "19 acks x (retransmit + keepalive)");
        assert_eq!(m.timer_stops, 2, "only TIME-WAIT entry stops timers");
        assert_eq!(m.retransmissions, 0);
    }

    #[test]
    fn same_seed_same_scheme_is_deterministic() {
        let cfg = quick_cfg();
        let mut a = NetSim::new(HashedWheelUnsorted::new(128), 6, cfg.clone());
        let ma = a.run(Tick(2_000_000)).clone();
        let mut b = NetSim::new(HashedWheelUnsorted::new(128), 6, cfg);
        let mb = b.run(Tick(2_000_000)).clone();
        assert_eq!(ma, mb);
    }

    #[test]
    fn every_scheme_completes_the_same_workload() {
        // The timer scheme is interchangeable: same connections, same data
        // delivered (same-tick dispatch order may differ, so the stochastic
        // counters need not match exactly).
        let cfg = quick_cfg();
        let mut a = NetSim::new(OracleScheme::new(), 6, cfg.clone());
        let ma = a.run(Tick(2_000_000)).clone();
        let mut b = NetSim::new(HashedWheelUnsorted::new(128), 6, cfg.clone());
        let mb = b.run(Tick(2_000_000)).clone();
        let mut c = NetSim::new(HierarchicalWheel::new(LevelSizes(vec![64, 64, 64])), 6, cfg);
        let mc = c.run(Tick(2_000_000)).clone();
        assert_eq!((ma.closed, ma.delivered), (6, 120));
        assert_eq!((mb.closed, mb.delivered), (6, 120));
        assert_eq!((mc.closed, mc.delivered), (6, 120));
    }

    #[test]
    fn keepalive_probes_fire_on_idle_connections() {
        // A connection whose final ack is awaited longer than the keepalive
        // interval sends probes. Force idleness with total loss after start:
        // loss = 1.0 drops everything, so only timers fire.
        let cfg = NetConfig {
            loss: 1.0,
            keepalive: 300,
            rto: 10_000, // retransmit far beyond the horizon
            ..quick_cfg()
        };
        let mut sim = NetSim::new(HashedWheelUnsorted::new(256), 1, cfg);
        let m = sim.run(Tick(2_000)).clone();
        assert!(m.probes >= 5, "probes {}", m.probes);
        assert_eq!(m.delivered, 0);
    }

    #[test]
    fn paper_scenario_200_connections() {
        // §1's sizing: 200 connections, several timers each. Check the
        // facility actually holds hundreds of concurrent timers.
        let cfg = NetConfig {
            segments_per_conn: 5,
            ..NetConfig::default()
        };
        let mut sim = NetSim::new(HashedWheelUnsorted::new(1024), 200, cfg);
        let m = sim.run(Tick(1_000_000)).clone();
        assert_eq!(m.closed, 200);
        assert_eq!(m.delivered, 200 * 5);
        // 200 conns × (per-segment retransmit + keepalives + acks + final
        // time-wait): thousands of timer ops through the wheel, most of
        // them in-place UPDATEs now that acks re-arm rather than stop+start.
        assert!(
            m.timer_starts + m.timer_restarts > 2_000,
            "starts {} + restarts {}",
            m.timer_starts,
            m.timer_restarts
        );
        // Every window-advancing ack re-arms two timers in place: with 200
        // conns × 5 segments that is on the order of 200 × 4 × 2 UPDATEs
        // (delayed-ack timers still START fresh each delivery, so raw starts
        // stay comparable).
        assert!(m.timer_restarts > 1_000, "restarts {}", m.timer_restarts);
    }
}
