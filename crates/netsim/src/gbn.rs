//! A Go-Back-N sliding-window transport — the second §1 protocol workload,
//! with the *opposite* timer discipline from stop-and-wait.
//!
//! Classic Go-Back-N keeps one retransmission timer per connection, armed
//! for the oldest unacknowledged segment; every cumulative ack restarts it.
//! Where the stop-and-wait sender of [`transport`](crate::transport) starts
//! one timer per segment (high churn, timers usually stopped), the GBN
//! sender restarts a single long-lived timer (lower churn, still mostly
//! stopped) — yet a window of W keeps W segments in flight, so goodput
//! scales with the bandwidth-delay product instead of collapsing to one
//! segment per round trip.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tw_core::{Tick, TickDelta, TimerHandle, TimerScheme};

/// What travels through the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GbnSegment {
    /// Data segment with this sequence number.
    Data(u64),
    /// Cumulative ack: receiver expects this sequence next.
    Ack(u64),
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GbnEvent {
    /// Delivery to the receiver side of a connection.
    ToServer(u32, GbnSegment),
    /// Delivery to the sender side.
    ToClient(u32, GbnSegment),
    /// The per-connection retransmission timer.
    Timeout(u32),
}

/// Parameters for a Go-Back-N run.
#[derive(Debug, Clone)]
pub struct GbnConfig {
    /// Independent loss probability per transmission.
    pub loss: f64,
    /// One-way delay, uniform in `[delay_lo, delay_hi]` ticks.
    pub delay_lo: u64,
    /// Upper delay bound (inclusive).
    pub delay_hi: u64,
    /// Retransmission timeout in ticks.
    pub rto: u64,
    /// Sender window size.
    pub window: u64,
    /// Segments each connection must deliver.
    pub segments_per_conn: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GbnConfig {
    fn default() -> Self {
        GbnConfig {
            loss: 0.02,
            delay_lo: 10,
            delay_hi: 40,
            rto: 250,
            window: 8,
            segments_per_conn: 100,
            seed: 7,
        }
    }
}

struct Conn {
    base: u64,
    next_seq: u64,
    timer: Option<TimerHandle>,
    recv_next: u64,
    done: bool,
}

/// Aggregate results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GbnMetrics {
    /// In-order segments delivered.
    pub delivered: u64,
    /// Data transmissions beyond each segment's first send.
    pub retransmissions: u64,
    /// Fresh timer arms (first send of a window, or re-arm after a stale
    /// handle).
    pub timer_starts: u64,
    /// Timer UPDATEs: the retransmission timer re-armed in place by a
    /// cumulative ack — one relink, not a stop + start pair.
    pub timer_restarts: u64,
    /// Timers stopped before expiry.
    pub timer_stops: u64,
    /// Retransmission timeouts that fired.
    pub timeouts: u64,
    /// Segments lost in the network.
    pub losses: u64,
    /// Tick at which the last connection finished (0 if none).
    pub finished_at: u64,
    /// Connections completed.
    pub finished: u64,
}

/// The Go-Back-N simulation. See the [module docs](self).
pub struct GbnSim<S> {
    scheme: S,
    conns: Vec<Conn>,
    cfg: GbnConfig,
    rng: SmallRng,
    sent_once: Vec<u64>, // high-water mark of first transmissions per conn
    /// Last scheduled arrival per (conn, direction): links are FIFO, so a
    /// later transmission never overtakes an earlier one (Go-Back-N relies
    /// on in-order delivery; reordering is indistinguishable from loss to
    /// it and would thrash the window).
    fifo: Vec<[u64; 2]>,
    /// Metrics accumulated so far.
    pub metrics: GbnMetrics,
}

impl<S: TimerScheme<GbnEvent>> GbnSim<S> {
    /// Creates a simulation of `connections` concurrent transfers.
    pub fn new(scheme: S, connections: usize, cfg: GbnConfig) -> GbnSim<S> {
        let conns = (0..connections)
            .map(|_| Conn {
                base: 0,
                next_seq: 0,
                timer: None,
                recv_next: 0,
                done: false,
            })
            .collect();
        let rng = SmallRng::seed_from_u64(cfg.seed);
        GbnSim {
            scheme,
            conns,
            cfg,
            rng,
            sent_once: vec![0; connections],
            fifo: vec![[0; 2]; connections],
            metrics: GbnMetrics::default(),
        }
    }

    /// Borrows the underlying scheme.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Runs until every connection finishes or the horizon hits.
    pub fn run(&mut self, horizon: Tick) -> &GbnMetrics {
        for c in 0..u32::try_from(self.conns.len()).unwrap_or(u32::MAX) {
            self.fill_window(c);
        }
        while self.scheme.now() < horizon && self.metrics.finished < self.conns.len() as u64 {
            let mut due = Vec::new();
            self.scheme.tick(&mut |e| due.push(e.payload));
            for event in due {
                self.handle(event);
            }
        }
        &self.metrics
    }

    fn transmit(&mut self, event: GbnEvent) {
        if self.rng.gen_bool(self.cfg.loss) {
            self.metrics.losses += 1;
            return;
        }
        let (conn, dir) = match event {
            GbnEvent::ToServer(c, _) => (c as usize, 0),
            GbnEvent::ToClient(c, _) => (c as usize, 1),
            GbnEvent::Timeout(_) => unreachable!("timeouts are not transmitted"),
        };
        let now = self.scheme.now().as_u64();
        let sampled = self.rng.gen_range(self.cfg.delay_lo..=self.cfg.delay_hi);
        // FIFO link: never arrive before anything sent earlier in the same
        // direction.
        let arrival = (now + sampled).max(self.fifo[conn][dir] + 1);
        self.fifo[conn][dir] = arrival;
        self.scheme
            .start_timer(TickDelta(arrival - now), event)
            .expect("delay within scheme range");
    }

    fn arm_timer(&mut self, conn: u32) {
        let h = self
            .scheme
            .start_timer(TickDelta(self.cfg.rto), GbnEvent::Timeout(conn))
            .expect("rto within scheme range");
        self.metrics.timer_starts += 1;
        self.conns[conn as usize].timer = Some(h);
    }

    fn disarm_timer(&mut self, conn: u32) {
        if let Some(h) = self.conns[conn as usize].timer.take() {
            if self.scheme.stop_timer(h).is_ok() {
                self.metrics.timer_stops += 1;
            }
        }
    }

    /// UPDATE on ack progress: re-arms the connection's single timer for a
    /// fresh RTO with one relink, keeping the handle. Falls back to a fresh
    /// arm only when there is no timer or the handle went stale (its
    /// timeout fired in the same expiry batch as the ack).
    fn restart_or_arm(&mut self, conn: u32) {
        if let Some(h) = self.conns[conn as usize].timer {
            match self.scheme.restart_timer(h, TickDelta(self.cfg.rto)) {
                Ok(()) => {
                    self.metrics.timer_restarts += 1;
                    return;
                }
                Err(_) => self.conns[conn as usize].timer = None,
            }
        }
        self.arm_timer(conn);
    }

    /// Sends fresh segments up to the window limit; arms the timer if
    /// anything is in flight and it is not already running.
    fn fill_window(&mut self, conn: u32) {
        loop {
            let c = &self.conns[conn as usize];
            if c.next_seq >= c.base + self.cfg.window || c.next_seq >= self.cfg.segments_per_conn {
                break;
            }
            let seq = c.next_seq;
            self.conns[conn as usize].next_seq += 1;
            if seq >= self.sent_once[conn as usize] {
                self.sent_once[conn as usize] = seq + 1;
            } else {
                self.metrics.retransmissions += 1;
            }
            self.transmit(GbnEvent::ToServer(conn, GbnSegment::Data(seq)));
        }
        let c = &self.conns[conn as usize];
        if c.timer.is_none() && c.base < c.next_seq {
            self.arm_timer(conn);
        }
    }

    fn handle(&mut self, event: GbnEvent) {
        match event {
            GbnEvent::ToServer(conn, GbnSegment::Data(seq)) => {
                let c = &mut self.conns[conn as usize];
                if seq == c.recv_next {
                    c.recv_next += 1;
                    self.metrics.delivered += 1;
                }
                // Cumulative ack either way (duplicate data re-acks).
                let ack = self.conns[conn as usize].recv_next;
                self.transmit(GbnEvent::ToClient(conn, GbnSegment::Ack(ack)));
            }
            GbnEvent::ToClient(conn, GbnSegment::Ack(n)) => {
                let c = &mut self.conns[conn as usize];
                if c.done || n <= c.base {
                    return;
                }
                c.base = n;
                if c.base >= self.cfg.segments_per_conn {
                    self.disarm_timer(conn);
                    self.conns[conn as usize].done = true;
                    self.metrics.finished += 1;
                    self.metrics.finished_at = self.scheme.now().as_u64();
                    return;
                }
                // The single timer covers the oldest unacked segment: every
                // ack with progress UPDATEs it in place — the §1 "restart
                // on every ack" discipline — instead of stop + start.
                self.restart_or_arm(conn);
                self.fill_window(conn);
            }
            GbnEvent::ToServer(_, GbnSegment::Ack(_))
            | GbnEvent::ToClient(_, GbnSegment::Data(_)) => {
                unreachable!("acks flow to clients, data to servers")
            }
            GbnEvent::Timeout(conn) => {
                let c = &mut self.conns[conn as usize];
                c.timer = None;
                if c.done {
                    return;
                }
                self.metrics.timeouts += 1;
                // Go back N: rewind and resend the whole window.
                c.next_seq = c.base;
                self.fill_window(conn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_core::wheel::HashedWheelUnsorted;

    fn wheel() -> HashedWheelUnsorted<GbnEvent> {
        HashedWheelUnsorted::new(256)
    }

    #[test]
    fn lossless_needs_no_retransmissions() {
        let cfg = GbnConfig {
            loss: 0.0,
            ..GbnConfig::default()
        };
        let mut sim = GbnSim::new(wheel(), 4, cfg);
        let m = sim.run(Tick(1_000_000)).clone();
        assert_eq!(m.finished, 4);
        assert_eq!(m.delivered, 400);
        assert_eq!(m.retransmissions, 0);
        assert_eq!(m.timeouts, 0);
    }

    #[test]
    fn window_scales_goodput_with_rtt() {
        // With RTT ≈ 2·25 = 50 ticks, window 8 finishes far sooner than
        // window 1 (which degenerates to stop-and-wait).
        let run = |window| {
            let cfg = GbnConfig {
                loss: 0.0,
                window,
                segments_per_conn: 200,
                ..GbnConfig::default()
            };
            let mut sim = GbnSim::new(wheel(), 1, cfg);
            sim.run(Tick(10_000_000)).finished_at
        };
        let w1 = run(1);
        let w8 = run(8);
        assert!(
            w8 * 4 < w1,
            "window 8 should be ≥4× faster: w1={w1} w8={w8}"
        );
    }

    #[test]
    fn heavy_loss_still_completes() {
        let cfg = GbnConfig {
            loss: 0.2,
            segments_per_conn: 50,
            ..GbnConfig::default()
        };
        let mut sim = GbnSim::new(wheel(), 6, cfg);
        let m = sim.run(Tick(30_000_000)).clone();
        assert_eq!(m.finished, 6);
        assert_eq!(m.delivered, 300);
        assert!(m.timeouts > 0);
        assert!(m.retransmissions > 0, "go-back-N resends whole windows");
    }

    #[test]
    fn single_timer_per_connection_restarted_on_progress() {
        // Timer discipline: ONE fresh arm per connection, every subsequent
        // ack an UPDATE in place, one stop at completion.
        let cfg = GbnConfig {
            loss: 0.0,
            window: 16,
            segments_per_conn: 160,
            ..GbnConfig::default()
        };
        let mut sim = GbnSim::new(wheel(), 1, cfg);
        let m = sim.run(Tick(1_000_000)).clone();
        assert_eq!(m.timer_starts, 1, "one fresh arm for the whole transfer");
        assert_eq!(
            m.timer_restarts,
            m.delivered - 1,
            "every progressing ack but the last restarts the timer in place"
        );
        assert_eq!(m.timer_stops, 1, "one disarm when the window empties");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GbnConfig::default();
        let mut a = GbnSim::new(wheel(), 3, cfg.clone());
        let ma = a.run(Tick(5_000_000)).clone();
        let mut b = GbnSim::new(wheel(), 3, cfg);
        let mb = b.run(Tick(5_000_000)).clone();
        assert_eq!(ma, mb);
    }
}
