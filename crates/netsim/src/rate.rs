//! Rate-based flow control driven by timers — the paper's second §1 timer
//! class: "algorithms that control the rate of production of some entity
//! (process control, rate-based flow control in communications)". These
//! timers "almost always expire", the opposite regime from retransmission
//! timers.
//!
//! A token bucket is refilled by a periodic timer in the scheme under test;
//! packet arrivals (Poisson-like, deterministic seed) are admitted when a
//! token is available and dropped otherwise.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tw_core::{Tick, TickDelta, TimerScheme};

/// A classic token bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    capacity: u64,
    tokens: u64,
}

impl TokenBucket {
    /// Creates a bucket with the given capacity, initially full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u64) -> TokenBucket {
        assert!(capacity > 0, "bucket capacity must be positive");
        TokenBucket {
            capacity,
            tokens: capacity,
        }
    }

    /// Current token count.
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Adds `n` tokens, saturating at capacity.
    pub fn refill(&mut self, n: u64) {
        self.tokens = (self.tokens + n).min(self.capacity);
    }

    /// Takes one token if available.
    pub fn try_consume(&mut self) -> bool {
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }
}

/// Results of a rate-control run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RateReport {
    /// Packets admitted (token available).
    pub admitted: u64,
    /// Packets dropped (bucket empty).
    pub dropped: u64,
    /// Refill timer expiries.
    pub refills: u64,
    /// Measured admitted rate in packets per tick.
    pub admitted_rate: f64,
}

/// Configuration for [`run_rate_control`].
#[derive(Debug, Clone)]
pub struct RateConfig {
    /// Bucket capacity in tokens.
    pub capacity: u64,
    /// Tokens added per refill.
    pub refill_tokens: u64,
    /// Ticks between refills (the always-expiring timer's interval).
    pub refill_every: u64,
    /// Offered load: expected packet arrivals per tick.
    pub offered_rate: f64,
    /// RNG seed for the arrival stream.
    pub seed: u64,
}

/// Runs a token-bucket shaper for `horizon` ticks over the given timer
/// scheme (which carries the refill timer).
///
/// The sustained admitted rate is `refill_tokens / refill_every` when the
/// offered load exceeds it, or the offered rate when under-loaded.
///
/// # Panics
///
/// Panics on zero `refill_every`/`refill_tokens` or non-positive
/// `offered_rate`.
pub fn run_rate_control<S: TimerScheme<()>>(
    scheme: &mut S,
    cfg: &RateConfig,
    horizon: Tick,
) -> RateReport {
    assert!(
        cfg.refill_every >= 1 && cfg.refill_tokens >= 1,
        "refill config"
    );
    assert!(cfg.offered_rate > 0.0, "offered rate must be positive");
    let mut bucket = TokenBucket::new(cfg.capacity);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut report = RateReport::default();

    scheme
        .start_timer(TickDelta(cfg.refill_every), ())
        .expect("refill interval within range");
    while scheme.now() < horizon {
        let mut refilled = false;
        scheme.tick(&mut |_| refilled = true);
        if refilled {
            report.refills += 1;
            bucket.refill(cfg.refill_tokens);
            scheme
                .start_timer(TickDelta(cfg.refill_every), ())
                .expect("refill interval within range");
        }
        // Poisson arrivals in a tick ≈ Bernoulli splits of the offered rate
        // (exact for rate ≤ 1 per tick; adequate for shaping experiments).
        let mut arrivals = 0u64;
        let mut r = cfg.offered_rate;
        while r > 0.0 {
            let p = r.min(1.0);
            if rng.gen_bool(p) {
                arrivals += 1;
            }
            r -= 1.0;
        }
        for _ in 0..arrivals {
            if bucket.try_consume() {
                report.admitted += 1;
            } else {
                report.dropped += 1;
            }
        }
    }
    report.admitted_rate = report.admitted as f64 / horizon.as_u64() as f64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_core::wheel::BasicWheel;

    #[test]
    fn bucket_basics() {
        let mut b = TokenBucket::new(3);
        assert_eq!(b.tokens(), 3);
        assert!(b.try_consume() && b.try_consume() && b.try_consume());
        assert!(!b.try_consume());
        b.refill(10);
        assert_eq!(b.tokens(), 3, "refill saturates at capacity");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TokenBucket::new(0);
    }

    #[test]
    fn overload_is_shaped_to_refill_rate() {
        // Offered 0.9/tick, shaped to 1 token / 5 ticks = 0.2/tick.
        let mut wheel: BasicWheel<()> = BasicWheel::new(64);
        let cfg = RateConfig {
            capacity: 10,
            refill_tokens: 1,
            refill_every: 5,
            offered_rate: 0.9,
            seed: 5,
        };
        let r = run_rate_control(&mut wheel, &cfg, Tick(50_000));
        assert!(
            (r.admitted_rate - 0.2).abs() < 0.01,
            "admitted rate {}",
            r.admitted_rate
        );
        assert!(r.dropped > r.admitted, "overload mostly drops");
        // The refill timer always expires: one expiry per interval.
        assert_eq!(r.refills, 50_000 / 5);
    }

    #[test]
    fn underload_admits_everything() {
        let mut wheel: BasicWheel<()> = BasicWheel::new(64);
        let cfg = RateConfig {
            capacity: 50,
            refill_tokens: 10,
            refill_every: 10, // 1 token/tick available
            offered_rate: 0.3,
            seed: 6,
        };
        let r = run_rate_control(&mut wheel, &cfg, Tick(20_000));
        assert_eq!(r.dropped, 0, "underload never drops");
        assert!((r.admitted_rate - 0.3).abs() < 0.02);
    }
}
