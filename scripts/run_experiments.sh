#!/usr/bin/env bash
# Regenerates every paper figure/table (see DESIGN.md §3 for the index).
# Usage: scripts/run_experiments.sh [output-dir]
set -euo pipefail
out="${1:-experiments-out}"
mkdir -p "$out"
bins=(fig3_queueing fig4_scheme12 fig6_trees fig7_simwheel sec7_vax \
      sec6_crossover burstiness precision hw_interrupts smp all_schemes \
      ablation_insert_rule protocols soak bitmap_sparse firing_error \
      ack_heavy lawn_scale async_sleeps)
for b in "${bins[@]}"; do
  echo "== $b"
  cargo run --quiet --release -p tw-bench --bin "$b" | tee "$out/$b.txt"
done
echo "All experiment outputs written to $out/"
