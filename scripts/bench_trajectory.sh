#!/usr/bin/env bash
# Perf-trajectory series: one BENCH_<nn>.json per PR, so regressions in
# the analyzer gate and the headline wheel numbers show up as a series,
# not an anecdote. BENCH_06 started the series with tw-analyze wall time
# and the bitmap_sparse headline rows (DESIGN.md section 7.4); BENCH_07
# adds the per-pass analyzer split (per-file rules vs summaries vs
# interprocedural cost rules vs each cfg-matrix leg) now that the cost
# lattice and the TW013 matrix dominate the gate's budget; BENCH_08 adds
# the T-RESTART ack_heavy rows (UPDATE vs STOP+START per scheme) now that
# restart_timer is a first-class operation everywhere.
#
# Usage: scripts/bench_trajectory.sh [out.json]   (default BENCH_08.json)
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_08.json}"

cargo build --release -p tw-analyze -p tw-bench >&2

# tw-analyze wall time: the binary reports its own measurement on stderr,
# and --json carries the per-pass timings_ms split.
analyze_json=$(mktemp)
analyze_err=$(mktemp)
bitmap_txt=$(mktemp)
ack_txt=$(mktemp)
trap 'rm -f "$analyze_json" "$analyze_err" "$bitmap_txt" "$ack_txt"' EXIT
./target/release/tw-analyze --workspace --json >"$analyze_json" 2>"$analyze_err"
analyze_ms=$(sed -n 's/.*analysis completed in \([0-9.]*\) ms.*/\1/p' "$analyze_err")
files=$(./target/release/tw-analyze --workspace 2>/dev/null |
    sed -n 's/tw-analyze: \([0-9]*\) file(s).*/\1/p')

./target/release/bitmap_sparse >"$bitmap_txt"
./target/release/ack_heavy >"$ack_txt"

python3 - "$out" "$analyze_ms" "$files" "$analyze_json" "$bitmap_txt" "$ack_txt" <<'EOF'
import json
import sys

out, analyze_ms, files = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
passes = json.load(open(sys.argv[4]))["timings_ms"]
assert "per_file_rules" in passes and "summaries" in passes, passes
assert any(k.startswith("leg:") for k in passes), passes
rows = []
for line in open(sys.argv[5]):
    parts = line.split()
    # Data rows: "<scheme> <n> <occ%> <loop us> <batch us> <speedup> ..."
    if len(parts) >= 9 and "/" in parts[0] and parts[1].isdigit():
        rows.append(
            {
                "scheme": parts[0],
                "timers": int(parts[1]),
                "occupancy": parts[2],
                "loop_us": float(parts[3]),
                "batch_us": float(parts[4]),
                "speedup": float(parts[5]),
            }
        )
assert rows, "no bitmap_sparse data rows parsed"
ack_rows = []
for line in open(sys.argv[6]):
    parts = line.split()
    # Data rows: "<scheme> <timers> <updates> <restart> <stopstart> <speedup>"
    if len(parts) == 6 and "(" in parts[0] and parts[1].isdigit():
        ack_rows.append(
            {
                "scheme": parts[0],
                "timers": int(parts[1]),
                "updates": int(parts[2]),
                "restart_ns": float(parts[3]),
                "stopstart_ns": float(parts[4]),
                "speedup": float(parts[5]),
            }
        )
assert ack_rows, "no ack_heavy data rows parsed"
# T-RESTART acceptance: the in-place update must beat the stop+start pair
# on the hierarchical and hybrid schemes at minimum.
for must_win in ("hier", "hybrid"):
    winners = [r for r in ack_rows if must_win in r["scheme"]]
    assert winners, f"ack_heavy rows missing a {must_win} scheme"
    for r in winners:
        assert r["speedup"] > 1.0, f"restart lost on {r['scheme']}: {r}"
doc = {
    "series": "bench-trajectory",
    "pr": 8,
    "tw_analyze": {
        "files_scanned": files,
        "wall_ms": analyze_ms,
        "passes_ms": passes,
    },
    "bitmap_sparse": rows,
    "ack_heavy": ack_rows,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: tw-analyze {analyze_ms} ms over {files} files "
      f"({len(passes)} passes), {len(rows)} bitmap_sparse rows, "
      f"{len(ack_rows)} ack_heavy rows")
EOF
