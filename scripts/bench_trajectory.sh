#!/usr/bin/env bash
# Perf-trajectory series: one BENCH_<nn>.json per PR, so regressions in
# the analyzer gate and the headline wheel numbers show up as a series,
# not an anecdote. BENCH_06 started the series with tw-analyze wall time
# and the bitmap_sparse headline rows (DESIGN.md section 7.4); BENCH_07
# adds the per-pass analyzer split (per-file rules vs summaries vs
# interprocedural cost rules vs each cfg-matrix leg) now that the cost
# lattice and the TW013 matrix dominate the gate's budget; BENCH_08 adds
# the T-RESTART ack_heavy rows (UPDATE vs STOP+START per scheme) now that
# restart_timer is a first-class operation everywhere; BENCH_09 adds the
# T-LAWN lawn_scale rows (Scheme 8 vs hierarchy vs hybrid under Zipf TTLs
# at up to a million live timers); BENCH_10 adds the T-ASYNC async_sleeps
# rows (a million concurrent Sleep futures through tw-async: arm / reset
# churn / wake storm / re-poll per-op costs, with the allocation-free and
# reset-is-UPDATE claims hard-asserted inside the bench binary).
#
# Usage: scripts/bench_trajectory.sh [out.json]   (default BENCH_10.json)
# The PR number in the JSON is derived from the digits in the output
# filename. LAWN_N (default 1000000) sizes the lawn_scale population and
# ASYNC_N (default 1000000) the async_sleeps fleet — CI's smoke leg passes
# LAWN_N=100000 / ASYNC_N=100000 to keep the job quick.
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_10.json}"
lawn_n="${LAWN_N:-1000000}"
async_n="${ASYNC_N:-1000000}"

cargo build --release -p tw-analyze -p tw-bench >&2

# tw-analyze wall time: the binary reports its own measurement on stderr,
# and --json carries the per-pass timings_ms split.
analyze_json=$(mktemp)
analyze_err=$(mktemp)
bitmap_txt=$(mktemp)
ack_txt=$(mktemp)
lawn_txt=$(mktemp)
async_txt=$(mktemp)
trap 'rm -f "$analyze_json" "$analyze_err" "$bitmap_txt" "$ack_txt" "$lawn_txt" "$async_txt"' EXIT
./target/release/tw-analyze --workspace --json >"$analyze_json" 2>"$analyze_err"
analyze_ms=$(sed -n 's/.*analysis completed in \([0-9.]*\) ms.*/\1/p' "$analyze_err")
files=$(./target/release/tw-analyze --workspace 2>/dev/null |
    sed -n 's/tw-analyze: \([0-9]*\) file(s).*/\1/p')

./target/release/bitmap_sparse >"$bitmap_txt"
./target/release/ack_heavy >"$ack_txt"
./target/release/lawn_scale "$lawn_n" >"$lawn_txt"
./target/release/async_sleeps "$async_n" >"$async_txt"

python3 - "$out" "$analyze_ms" "$files" "$analyze_json" "$bitmap_txt" "$ack_txt" "$lawn_txt" "$async_txt" <<'EOF'
import json
import re
import sys

out, analyze_ms, files = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
# The series index comes from the output filename (BENCH_09.json -> 9),
# so the next PR only renames the artifact instead of editing this script.
m = re.search(r"(\d+)", out.rsplit("/", 1)[-1])
assert m, f"output filename {out} carries no series number"
pr = int(m.group(1))
passes = json.load(open(sys.argv[4]))["timings_ms"]
assert "per_file_rules" in passes and "summaries" in passes, passes
assert any(k.startswith("leg:") for k in passes), passes
rows = []
for line in open(sys.argv[5]):
    parts = line.split()
    # Data rows: "<scheme> <n> <occ%> <loop us> <batch us> <speedup> ..."
    if len(parts) >= 9 and "/" in parts[0] and parts[1].isdigit():
        rows.append(
            {
                "scheme": parts[0],
                "timers": int(parts[1]),
                "occupancy": parts[2],
                "loop_us": float(parts[3]),
                "batch_us": float(parts[4]),
                "speedup": float(parts[5]),
            }
        )
assert rows, "no bitmap_sparse data rows parsed"
ack_rows = []
for line in open(sys.argv[6]):
    parts = line.split()
    # Data rows: "<scheme> <timers> <updates> <restart> <stopstart> <speedup>"
    if len(parts) == 6 and "(" in parts[0] and parts[1].isdigit():
        ack_rows.append(
            {
                "scheme": parts[0],
                "timers": int(parts[1]),
                "updates": int(parts[2]),
                "restart_ns": float(parts[3]),
                "stopstart_ns": float(parts[4]),
                "speedup": float(parts[5]),
            }
        )
assert ack_rows, "no ack_heavy data rows parsed"
# T-RESTART acceptance: the in-place update must beat the stop+start pair
# on the hierarchical and hybrid schemes at minimum.
for must_win in ("hier", "hybrid"):
    winners = [r for r in ack_rows if must_win in r["scheme"]]
    assert winners, f"ack_heavy rows missing a {must_win} scheme"
    for r in winners:
        assert r["speedup"] > 1.0, f"restart lost on {r['scheme']}: {r}"
lawn_rows = []
for line in open(sys.argv[7]):
    parts = line.split()
    # Data rows: "<scheme> <n> <fill> <churn> <drain> <slots@fill>
    #             <slots@churn> <ovh/tick> <err-p99> <err-max>"
    if len(parts) == 10 and "(" in parts[0] and parts[1].isdigit():
        lawn_rows.append(
            {
                "scheme": parts[0],
                "timers": int(parts[1]),
                "fill_ns": float(parts[2]),
                "churn_ns": float(parts[3]),
                "drain_ns": float(parts[4]),
                "slots_fill": int(parts[5]),
                "slots_churn": int(parts[6]),
                "overhead_per_tick": float(parts[7]),
                "err_p99": int(parts[8]),
                "err_max": int(parts[9]),
            }
        )
assert lawn_rows, "no lawn_scale data rows parsed"
# T-LAWN acceptance: Scheme 8's per-tick bookkeeping stays flat at the
# distinct-TTL bound while the hierarchy's grows with the population.
lawns = [r for r in lawn_rows if "lawn" in r["scheme"]]
hiers = sorted(
    (r for r in lawn_rows if "hier" in r["scheme"]), key=lambda r: r["timers"]
)
assert lawns and len(hiers) >= 2, f"lawn_scale rows incomplete: {lawn_rows}"
for r in lawns:
    assert r["overhead_per_tick"] <= 8.0, f"lawn overhead not flat: {r}"
    assert r["slots_churn"] <= r["slots_fill"], f"lawn arena grew under churn: {r}"
assert hiers[-1]["overhead_per_tick"] > 1.3 * hiers[0]["overhead_per_tick"], (
    f"hierarchy overhead should grow with population: {hiers}"
)
# T-ASYNC rows: the bench binary hard-asserts the allocation-free,
# reset-is-UPDATE, and exactly-once-wake claims; here we record the
# headline per-op costs and re-check the waker-slot plateau.
async_doc = {}
for line in open(sys.argv[8]):
    parts = line.split()
    m = re.match(r"re-poll .*: ([0-9.]+) ns/op", line)
    if m:
        async_doc["repoll_ns"] = float(m.group(1))
    elif len(parts) >= 3 and parts[-2] in ("sleeps", "resets", "fires"):
        key = {"sleeps": "ramp", "resets": "reset_churn", "fires": "storm"}[parts[-2]]
        async_doc[key] = {"count": int(parts[-3]), "per_op_ns": float(parts[-1])}
    elif "waker slots peak/final" in line:
        peak, final = (int(x) for x in parts[-1].split("/"))
        async_doc["waker_slots"] = {"peak": peak, "final": final}
    elif "wake latency" in line:
        p50, p99 = (int(x) for x in parts[-1].split("/"))
        async_doc["wake_latency_ticks"] = {"p50": p50, "p99": p99}
for key in ("repoll_ns", "ramp", "reset_churn", "storm", "waker_slots"):
    assert key in async_doc, f"async_sleeps output missing {key}: {async_doc}"
slots = async_doc["waker_slots"]
assert slots["final"] == slots["peak"], f"waker slab not a plateau: {slots}"
assert async_doc["repoll_ns"] < async_doc["ramp"]["per_op_ns"], (
    f"re-registration should be far cheaper than arming: {async_doc}"
)
doc = {
    "series": "bench-trajectory",
    "pr": pr,
    "tw_analyze": {
        "files_scanned": files,
        "wall_ms": analyze_ms,
        "passes_ms": passes,
    },
    "bitmap_sparse": rows,
    "ack_heavy": ack_rows,
    "lawn_scale": lawn_rows,
    "async_sleeps": async_doc,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: tw-analyze {analyze_ms} ms over {files} files "
      f"({len(passes)} passes), {len(rows)} bitmap_sparse rows, "
      f"{len(ack_rows)} ack_heavy rows, {len(lawn_rows)} lawn_scale rows, "
      f"async_sleeps fleet of {async_doc['ramp']['count']}")
EOF
