//! Workspace-level property tests: conservation and liveness of timers
//! under randomized workloads, for every scheme in the zoo.
//!
//! Conservation: every started timer is resolved exactly once — either by a
//! successful `stop_timer` or by exactly one expiry — never both, never
//! twice, never lost.

use proptest::prelude::*;
use timing_wheels::prelude::*;
use tw_workload::{ArrivalProcess, IntervalDist, Trace, TraceConfig, TraceOp};

fn config_strategy() -> impl Strategy<Value = TraceConfig> {
    (
        0.05f64..3.0,  // arrival rate
        1u64..2_000,   // interval scale
        0.0f64..1.0,   // stop probability
        500u64..3_000, // horizon
        any::<u64>(),  // seed
        0usize..3,     // distribution selector
    )
        .prop_map(
            |(rate, scale, stop_prob, horizon, seed, dist)| TraceConfig {
                arrivals: ArrivalProcess::Poisson { rate },
                intervals: match dist {
                    0 => IntervalDist::Uniform {
                        lo: 1,
                        hi: scale.max(2),
                    },
                    1 => IntervalDist::Exponential { mean: scale as f64 },
                    _ => IntervalDist::Constant(scale),
                },
                stop_prob,
                horizon,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation across the whole zoo for arbitrary workload shapes.
    #[test]
    fn every_timer_resolved_exactly_once(cfg in config_strategy()) {
        let trace = Trace::generate(&cfg);
        for mut scheme in tw_bench::scheme_zoo(1 << 24, 32) {
            let mut handles = std::collections::HashMap::new();
            let mut resolved = std::collections::HashMap::<u64, &'static str>::new();
            for op in &trace.ops {
                match *op {
                    TraceOp::Start { id, interval } => {
                        let h = scheme.start_timer(interval, id).unwrap();
                        handles.insert(id, h);
                    }
                    TraceOp::Stop { id } => {
                        let h = handles.remove(&id).unwrap();
                        prop_assert_eq!(scheme.stop_timer(h), Ok(id), "{}", scheme.name());
                        prop_assert!(
                            resolved.insert(id, "stopped").is_none(),
                            "{}: double resolution",
                            scheme.name()
                        );
                    }
                    TraceOp::Tick => {
                        let mut fired = Vec::new();
                        scheme.tick(&mut |e| fired.push(e));
                        for e in fired {
                            prop_assert_eq!(e.error(), 0, "{}", scheme.name());
                            prop_assert!(
                                resolved.insert(e.payload, "fired").is_none(),
                                "{}: double resolution",
                                scheme.name()
                            );
                            handles.remove(&e.payload);
                        }
                    }
                }
            }
            // Drain the stragglers.
            let mut guard = 0u64;
            while scheme.outstanding() > 0 {
                scheme.tick(&mut |e| {
                    assert!(resolved.insert(e.payload, "fired").is_none());
                });
                guard += 1;
                prop_assert!(guard < 20_000_000, "{}: drain stuck", scheme.name());
            }
            prop_assert_eq!(
                resolved.len() as u64,
                trace.starts,
                "{}: lost timers",
                scheme.name()
            );
            // Stale handles of resolved timers must be rejected.
            for (_, h) in handles {
                prop_assert_eq!(scheme.stop_timer(h), Err(TimerError::Stale));
            }
        }
    }

    /// Clock monotonicity and `now` agreement with tick count.
    #[test]
    fn clock_advances_one_tick_at_a_time(ticks in 1u64..500) {
        for mut scheme in tw_bench::scheme_zoo(1 << 16, 16) {
            for expect in 1..=ticks {
                scheme.tick(&mut |_| {});
                prop_assert_eq!(scheme.now(), Tick(expect));
            }
        }
    }
}
