//! Workspace-wide conformance: every scheme in the zoo, driven by the same
//! generated traces, must deliver identical observable behaviour — same
//! expiry count, zero firing error, identical peak population — and must
//! agree with the oracle tick by tick.

// Integration test: panicking on an unexpected Err is the assertion.
#![allow(clippy::unwrap_used)]

use timing_wheels::prelude::*;
use tw_workload::{replay, ArrivalProcess, IntervalDist, Trace, TraceConfig};

fn traces() -> Vec<(&'static str, Trace)> {
    vec![
        (
            "poisson-exp-halfstopped",
            Trace::generate(&TraceConfig {
                arrivals: ArrivalProcess::Poisson { rate: 1.0 },
                intervals: IntervalDist::Exponential { mean: 300.0 },
                stop_prob: 0.5,
                horizon: 10_000,
                seed: 1,
            }),
        ),
        (
            "bursty-uniform-nostop",
            Trace::generate(&TraceConfig {
                arrivals: ArrivalProcess::Bursty {
                    burst_len: 20,
                    idle: 50,
                },
                intervals: IntervalDist::Uniform { lo: 1, hi: 2_000 },
                stop_prob: 0.0,
                horizon: 10_000,
                seed: 2,
            }),
        ),
        (
            "constant-intervals-allstopped",
            Trace::generate(&TraceConfig {
                arrivals: ArrivalProcess::Deterministic { gap: 3 },
                intervals: IntervalDist::Constant(500),
                stop_prob: 0.9,
                horizon: 8_000,
                seed: 3,
            }),
        ),
        (
            "pareto-heavy-tail",
            Trace::generate(&TraceConfig {
                arrivals: ArrivalProcess::Poisson { rate: 0.3 },
                intervals: IntervalDist::Pareto {
                    alpha: 1.8,
                    min: 10,
                },
                stop_prob: 0.3,
                horizon: 10_000,
                seed: 4,
            }),
        ),
    ]
}

#[test]
fn all_schemes_agree_with_oracle_on_every_trace() {
    for (name, trace) in traces() {
        let mut oracle = OracleScheme::<u64>::new();
        let reference = replay(&mut oracle, &trace, false);
        for mut scheme in tw_bench::scheme_zoo(1 << 22, 64) {
            let report = replay(scheme.as_mut(), &trace, false);
            assert_eq!(
                report.expiries, reference.expiries,
                "{}: expiry count on {name}",
                report.scheme
            );
            assert_eq!(
                report.peak_outstanding, reference.peak_outstanding,
                "{}: peak population on {name}",
                report.scheme
            );
            assert_eq!(
                report.error.max().unwrap_or(0.0),
                0.0,
                "{}: firing error on {name}",
                report.scheme
            );
            assert_eq!(
                report.error.min().unwrap_or(0.0),
                0.0,
                "{}: early firing on {name}",
                report.scheme
            );
        }
    }
}

#[test]
fn per_tick_expiry_sets_match_oracle_exactly() {
    // Stronger than counts: compare the expiry multiset per tick.
    let trace = Trace::generate(&TraceConfig {
        arrivals: ArrivalProcess::Poisson { rate: 2.0 },
        intervals: IntervalDist::Uniform { lo: 1, hi: 500 },
        stop_prob: 0.4,
        horizon: 3_000,
        seed: 9,
    });
    // Record the oracle's firing schedule id -> tick.
    let mut oracle = OracleScheme::<u64>::new();
    let mut schedule = std::collections::HashMap::new();
    drive(&mut oracle, &trace, |id, t| {
        schedule.insert(id, t);
    });
    for mut scheme in tw_bench::scheme_zoo(1 << 22, 64) {
        let mut fired = std::collections::HashMap::new();
        drive(scheme.as_mut(), &trace, |id, t| {
            fired.insert(id, t);
        });
        assert_eq!(fired, schedule, "schedule mismatch for some scheme");
    }
}

/// Minimal replay that reports (id, fired_at) pairs.
fn drive<S: TimerScheme<u64> + ?Sized>(
    scheme: &mut S,
    trace: &Trace,
    mut on_fire: impl FnMut(u64, u64),
) {
    use std::collections::HashMap;
    use tw_workload::TraceOp;
    let mut handles: HashMap<u64, TimerHandle> = HashMap::new();
    for op in &trace.ops {
        match *op {
            TraceOp::Start { id, interval } => {
                handles.insert(id, scheme.start_timer(interval, id).unwrap());
            }
            TraceOp::Stop { id } => {
                let h = handles.remove(&id).unwrap();
                scheme.stop_timer(h).unwrap();
            }
            TraceOp::Tick => {
                scheme.tick(&mut |e| on_fire(e.payload, e.fired_at.as_u64()));
            }
        }
    }
}
