//! The §7 instruction accounting must be an exact identity, not an
//! approximation: every scheme's `vax_instructions` decomposes into the
//! model constants times the event counters. This pins the cost model the
//! `sec7_vax` experiment relies on.

use timing_wheels::prelude::*;
use tw_workload::{replay, ArrivalProcess, IntervalDist, Trace, TraceConfig};

fn churn_trace(seed: u64) -> Trace {
    Trace::generate(&TraceConfig {
        arrivals: ArrivalProcess::Poisson { rate: 1.5 },
        intervals: IntervalDist::Uniform { lo: 1, hi: 700 },
        stop_prob: 0.5,
        horizon: 5_000,
        seed,
    })
}

/// insert=13, delete=7, skip=4, step=6, expire=9 (§7).
fn flat_model(c: &tw_core::OpCounters) -> u64 {
    13 * c.starts + 7 * c.stops + 4 * c.ticks + 6 * c.decrements + 9 * c.expiries
}

#[test]
fn scheme1_identity() {
    let mut s = UnorderedScheme::<u64>::new();
    let r = replay(&mut s, &churn_trace(1), false);
    assert_eq!(r.counters.vax_instructions, flat_model(&r.counters));
}

#[test]
fn scheme2_identity_includes_search_steps() {
    for search in [SearchFrom::Front, SearchFrom::Rear] {
        let mut s = OrderedListScheme::<u64>::with_search(search);
        let r = replay(&mut s, &churn_trace(2), false);
        assert_eq!(
            r.counters.vax_instructions,
            flat_model(&r.counters) + 6 * r.counters.start_steps,
            "{search:?}"
        );
    }
}

#[test]
fn scheme6_identity() {
    let mut s = HashedWheelUnsorted::<u64>::new(64);
    let r = replay(&mut s, &churn_trace(3), false);
    assert_eq!(r.counters.vax_instructions, flat_model(&r.counters));
    // And the §7 derived decomposition of ticks.
    assert_eq!(
        r.counters.ticks,
        r.counters.empty_slot_skips + r.counters.nonempty_slot_visits
    );
}

#[test]
fn scheme5_identity_includes_search_steps() {
    let mut s = HashedWheelSorted::<u64>::new(64);
    let r = replay(&mut s, &churn_trace(4), false);
    assert_eq!(
        r.counters.vax_instructions,
        flat_model(&r.counters) + 6 * r.counters.start_steps
    );
}

#[test]
fn scheme7_identity_includes_migrations() {
    let mut s = HierarchicalWheel::<u64>::new(LevelSizes(vec![16, 16, 16]));
    let r = replay(&mut s, &churn_trace(5), false);
    // Migrations are re-inserts (13 each); level visits charge a skip each,
    // so ticks alone do not bound the 4s — use the recorded slot visits.
    assert_eq!(
        r.counters.vax_instructions,
        13 * r.counters.starts
            + 13 * r.counters.migrations
            + 7 * r.counters.stops
            + 4 * (r.counters.empty_slot_skips + r.counters.nonempty_slot_visits)
            + 6 * r.counters.decrements
            + 9 * r.counters.expiries
    );
}

#[test]
fn every_zoo_scheme_counts_all_its_ticks() {
    let trace = churn_trace(6);
    for mut s in tw_bench::scheme_zoo(1 << 12, 64) {
        let r = replay(s.as_mut(), &trace, false);
        assert_eq!(r.counters.ticks, trace.ticks, "{}", r.scheme);
        assert_eq!(r.counters.starts, trace.starts, "{}", r.scheme);
        assert_eq!(r.counters.stops, trace.stops, "{}", r.scheme);
        // Timers still outstanding at the horizon drain afterwards; the
        // ledger must balance exactly.
        let mut drained = 0u64;
        let mut guard = 0u64;
        while s.outstanding() > 0 {
            s.tick(&mut |_| drained += 1);
            guard += 1;
            assert!(guard < 100_000, "{}: drain stuck", r.scheme);
        }
        assert_eq!(
            r.counters.expiries + drained,
            trace.starts - trace.stops,
            "{}: every non-stopped timer fires exactly once",
            r.scheme
        );
    }
}
