//! Property tests for the §2 paper-exact client interface: arbitrary
//! interleavings of one-shot starts, periodic starts, stops and ticks,
//! checked against a simple reference model of the `Request_ID` namespace.

use std::collections::HashMap;

use proptest::prelude::*;
use timing_wheels::core::facility::{ExpiryAction, TimerFacility};
use timing_wheels::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    StartOnce { id: u64, interval: u64 },
    StartPeriodic { id: u64, period: u64 },
    Stop { id: u64 },
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..8, 1u64..100).prop_map(|(id, interval)| Op::StartOnce { id, interval }),
        1 => (0u64..8, 1u64..40).prop_map(|(id, period)| Op::StartPeriodic { id, period }),
        2 => (0u64..8).prop_map(|id| Op::Stop { id }),
        5 => Just(Op::Tick),
    ]
}

#[derive(Debug, Clone, Copy)]
struct ModelTimer {
    deadline: u64,
    period: Option<u64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The facility's Request_ID namespace behaves like the obvious model:
    /// duplicate ids rejected while outstanding, stops only for outstanding
    /// ids, one-shot ids free after expiry, periodic ids re-armed with the
    /// k-th firing at start + k·period.
    #[test]
    fn facility_matches_request_id_model(
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        let mut facility = TimerFacility::new(HashedWheelUnsorted::new(16));
        let mut model: HashMap<u64, ModelTimer> = HashMap::new();
        let mut now = 0u64;

        for op in ops {
            match op {
                Op::StartOnce { id, interval } => {
                    let got = facility.start_timer(
                        TickDelta(interval),
                        RequestId(id),
                        ExpiryAction::Nop,
                    );
                    match model.entry(id) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            prop_assert_eq!(got, Err(TimerError::DuplicateRequestId));
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            prop_assert_eq!(got, Ok(()));
                            e.insert(ModelTimer { deadline: now + interval, period: None });
                        }
                    }
                }
                Op::StartPeriodic { id, period } => {
                    let got = facility.start_periodic(
                        TickDelta(period),
                        RequestId(id),
                        ExpiryAction::Nop,
                    );
                    match model.entry(id) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            prop_assert_eq!(got, Err(TimerError::DuplicateRequestId));
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            prop_assert_eq!(got, Ok(()));
                            e.insert(ModelTimer {
                                deadline: now + period,
                                period: Some(period),
                            });
                        }
                    }
                }
                Op::Stop { id } => {
                    let got = facility.stop_timer(RequestId(id));
                    if model.remove(&id).is_some() {
                        prop_assert_eq!(got, Ok(()));
                    } else {
                        prop_assert_eq!(got, Err(TimerError::UnknownRequestId));
                    }
                }
                Op::Tick => {
                    now += 1;
                    let mut fired = facility.per_tick_bookkeeping();
                    fired.sort_by_key(|r| r.request_id.0);
                    let mut expect: Vec<u64> = model
                        .iter()
                        .filter(|(_, t)| t.deadline == now)
                        .map(|(&id, _)| id)
                        .collect();
                    expect.sort_unstable();
                    let got: Vec<u64> = fired.iter().map(|r| r.request_id.0).collect();
                    prop_assert_eq!(&got, &expect, "firing set at t={}", now);
                    for r in &fired {
                        prop_assert_eq!(r.fired_at.as_u64(), now);
                        prop_assert_eq!(r.deadline.as_u64(), now);
                    }
                    // Update the model: one-shots leave, periodics re-arm.
                    for id in expect {
                        let t = model.get_mut(&id).expect("fired id is modeled");
                        match t.period {
                            Some(p) => t.deadline = now + p,
                            None => {
                                model.remove(&id);
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(facility.outstanding(), model.len());
            for id in 0..8u64 {
                prop_assert_eq!(
                    facility.is_outstanding(RequestId(id)),
                    model.contains_key(&id),
                    "id {} visibility at t={}",
                    id,
                    now
                );
            }
        }
    }
}
