//! The paper-exact §2 client interface (`START_TIMER(Interval, Request_ID,
//! Expiry_Action)` / `STOP_TIMER(Request_ID)`) exercised over several
//! underlying schemes end to end.

// Integration test: panicking on an unexpected Err is the assertion.
#![allow(clippy::unwrap_used)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use timing_wheels::core::facility::{ExpiryAction, TimerFacility};
use timing_wheels::prelude::*;

fn exercise<S>(scheme: S)
where
    S: TimerScheme<(RequestId, ExpiryAction)>,
{
    let mut module = TimerFacility::new(scheme);
    let flag = Arc::new(AtomicBool::new(false));
    let count = Arc::new(AtomicU64::new(0));

    // A callback action, a flag action, a no-op, and one timer to cancel.
    let count2 = Arc::clone(&count);
    module
        .start_timer(
            TickDelta(5),
            RequestId(1),
            ExpiryAction::Callback(Box::new(move |rid, info| {
                assert_eq!(rid, RequestId(1));
                assert_eq!(info.fired_at, info.deadline);
                count2.fetch_add(1, Ordering::Relaxed);
            })),
        )
        .unwrap();
    module
        .start_timer(
            TickDelta(7),
            RequestId(2),
            ExpiryAction::SetFlag(Arc::clone(&flag)),
        )
        .unwrap();
    module
        .start_timer(TickDelta(9), RequestId(3), ExpiryAction::Nop)
        .unwrap();
    module
        .start_timer(TickDelta(3), RequestId(4), ExpiryAction::Nop)
        .unwrap();

    // Duplicate ids are rejected while outstanding.
    assert_eq!(
        module.start_timer(TickDelta(5), RequestId(2), ExpiryAction::Nop),
        Err(TimerError::DuplicateRequestId)
    );

    // STOP_TIMER by request id.
    module.stop_timer(RequestId(4)).unwrap();
    assert_eq!(
        module.stop_timer(RequestId(4)),
        Err(TimerError::UnknownRequestId)
    );

    let mut records = Vec::new();
    for _ in 0..10 {
        records.extend(module.per_tick_bookkeeping());
    }
    assert_eq!(records.len(), 3);
    assert_eq!(
        records.iter().map(|r| r.request_id.0).collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
    assert!(flag.load(Ordering::Relaxed));
    assert_eq!(count.load(Ordering::Relaxed), 1);
    assert_eq!(module.outstanding(), 0);

    // Ids are reusable after expiry.
    module
        .start_timer(TickDelta(1), RequestId(1), ExpiryAction::Nop)
        .unwrap();
    assert_eq!(module.per_tick_bookkeeping().len(), 1);
}

#[test]
fn facility_over_basic_wheel() {
    exercise(BasicWheel::new(64));
}

#[test]
fn facility_over_hashed_unsorted() {
    exercise(HashedWheelUnsorted::new(16));
}

#[test]
fn facility_over_hashed_sorted() {
    exercise(HashedWheelSorted::new(16));
}

#[test]
fn facility_over_hierarchical() {
    exercise(HierarchicalWheel::new(LevelSizes(vec![8, 8])));
}

#[test]
fn facility_over_ordered_list() {
    exercise(OrderedListScheme::new());
}

#[test]
fn facility_over_heap() {
    exercise(BinaryHeapScheme::new());
}

#[test]
fn facility_over_oracle() {
    exercise(OracleScheme::new());
}
