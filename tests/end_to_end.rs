//! End-to-end integration across the substrates: the transport simulation,
//! the logic simulator, the hardware-assist accounting and the timer
//! service each running over multiple timer schemes.

use timing_wheels::des::{Circuit, GateKind, LogicSim, RotationPolicy, SimWheel};
use timing_wheels::hwsim::{run_with_assist, AssistModel};
use timing_wheels::netsim::{NetConfig, NetSim};
use timing_wheels::prelude::*;
use tw_concurrent::TimerService;
use tw_workload::{ArrivalProcess, IntervalDist, Trace, TraceConfig};

#[test]
fn transport_completes_over_four_different_schemes() {
    let cfg = NetConfig {
        loss: 0.1,
        segments_per_conn: 10,
        ..NetConfig::default()
    };
    let run = |m: &mut dyn FnMut() -> u64| m();
    let horizon = Tick(3_000_000);

    let mut a = NetSim::new(HashedWheelUnsorted::new(256), 12, cfg.clone());
    let mut b = NetSim::new(
        HierarchicalWheel::new(LevelSizes(vec![32, 32, 32])),
        12,
        cfg.clone(),
    );
    let mut c = NetSim::new(BinaryHeapScheme::new(), 12, cfg.clone());
    let mut d = NetSim::new(OrderedListScheme::new(), 12, cfg);
    for (closed, delivered) in [
        run(&mut || {
            let m = a.run(horizon);
            m.closed * 1_000_000 + m.delivered
        }),
        run(&mut || {
            let m = b.run(horizon);
            m.closed * 1_000_000 + m.delivered
        }),
        run(&mut || {
            let m = c.run(horizon);
            m.closed * 1_000_000 + m.delivered
        }),
        run(&mut || {
            let m = d.run(horizon);
            m.closed * 1_000_000 + m.delivered
        }),
    ]
    .into_iter()
    .map(|packed| (packed / 1_000_000, packed % 1_000_000))
    {
        assert_eq!(closed, 12);
        assert_eq!(delivered, 120);
    }
}

#[test]
fn logic_adder_consistent_across_schedulers() {
    // The same circuit settles to the same outputs whichever timer scheme
    // schedules its gate evaluations (§4.2's interchangeability).
    fn build_and_run<S: TimerScheme<u32>>(scheme: S, av: u64, bv: u64) -> u64 {
        let mut c = Circuit::new();
        let a: Vec<_> = (0..4).map(|_| c.net()).collect();
        let b: Vec<_> = (0..4).map(|_| c.net()).collect();
        let zero = c.net();
        let mut carry = zero;
        let mut sums = Vec::new();
        for i in 0..4 {
            let axb = c.gate(GateKind::Xor, &[a[i], b[i]], 1);
            let sum = c.gate(GateKind::Xor, &[axb, carry], 1);
            let and1 = c.gate(GateKind::And, &[a[i], b[i]], 1);
            let and2 = c.gate(GateKind::And, &[axb, carry], 1);
            carry = c.gate(GateKind::Or, &[and1, and2], 1);
            sums.push(sum);
        }
        let mut sim = LogicSim::new(c, scheme);
        for i in 0..4 {
            sim.set_input(a[i], (av >> i) & 1 != 0);
            sim.set_input(b[i], (bv >> i) & 1 != 0);
        }
        sim.initialize();
        sim.settle(10_000);
        let mut got = 0u64;
        for (i, &s) in sums.iter().enumerate() {
            got |= u64::from(sim.value(s)) << i;
        }
        got | (u64::from(sim.value(carry)) << 4)
    }

    for (av, bv) in [(11u64, 6u64), (15, 15), (0, 13)] {
        let want = av + bv;
        assert_eq!(
            build_and_run(SimWheel::new(32, RotationPolicy::OnWrap), av, bv),
            want
        );
        assert_eq!(
            build_and_run(SimWheel::new(32, RotationPolicy::Halfway), av, bv),
            want
        );
        assert_eq!(build_and_run(HashedWheelUnsorted::new(8), av, bv), want);
        assert_eq!(build_and_run(BasicWheel::new(16), av, bv), want);
        assert_eq!(build_and_run(OracleScheme::new(), av, bv), want);
    }
}

#[test]
fn hardware_assist_orderings_hold() {
    let trace = Trace::generate(&TraceConfig {
        arrivals: ArrivalProcess::Poisson { rate: 0.05 },
        intervals: IntervalDist::Uniform { lo: 500, hi: 1_500 },
        stop_prob: 0.0,
        horizon: 30_000,
        seed: 8,
    });
    let mut none_scheme = HashedWheelUnsorted::<u64>::new(128);
    let none = run_with_assist(&mut none_scheme, &trace, AssistModel::None);
    let mut chip_scheme = HashedWheelUnsorted::<u64>::new(128);
    let chip = run_with_assist(&mut chip_scheme, &trace, AssistModel::FullChip);
    let mut busy_small = HashedWheelUnsorted::<u64>::new(32);
    let bs = run_with_assist(&mut busy_small, &trace, AssistModel::BusyBit);
    let mut busy_big = HashedWheelUnsorted::<u64>::new(1024);
    let bb = run_with_assist(&mut busy_big, &trace, AssistModel::BusyBit);
    let mut hier = HierarchicalWheel::<u64>::new(LevelSizes(vec![16, 16, 16]));
    let h = run_with_assist(&mut hier, &trace, AssistModel::BusyBit);

    // The Appendix A orderings: full chip ≪ busy-bit ≪ no assist, busy-bit
    // improves with memory, and the hierarchy beats the flat wheel at a
    // fraction of the memory.
    assert!(chip.host_interrupts < bs.host_interrupts);
    assert!(bb.host_interrupts < bs.host_interrupts);
    assert!(bs.host_interrupts < none.host_interrupts);
    assert!(h.host_interrupts < bs.host_interrupts);
    assert_eq!(none.host_interrupts, none.ticks);
}

#[test]
fn timer_service_over_three_schemes() {
    for scheme in [0usize, 1, 2] {
        let svc = match scheme {
            0 => TimerService::builder(HashedWheelUnsorted::<RequestId>::new(64)).spawn(),
            1 => TimerService::builder(HierarchicalWheel::<RequestId>::new(LevelSizes(vec![
                16, 16,
            ])))
            .spawn(),
            _ => TimerService::builder(OracleScheme::<RequestId>::new()).spawn(),
        };
        for i in 0..20 {
            svc.start_timer(i, TickDelta(i + 1)).unwrap();
        }
        assert_eq!(svc.advance(25), 20);
        let mut fired: Vec<_> = svc.expiries().try_iter().map(|e| e.id).collect();
        fired.sort_unstable();
        assert_eq!(fired, (0..20).map(RequestId).collect::<Vec<_>>());
    }
}
