//! Quickstart: the paper's four-routine timer module in twenty lines.
//!
//! Run with `cargo run --example quickstart`.

// Demo binary: aborting on an unexpected error is the right behavior, and
// interval arithmetic here is illustrative, not the audited tick domain.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use timing_wheels::prelude::*;

fn main() {
    // The paper's recommendation for a general-purpose facility (§7):
    // Scheme 6, a hashed timing wheel. 256 slots, arbitrary interval sizes,
    // O(1) START_TIMER and STOP_TIMER, O(n/256) average per-tick work.
    let mut timers: HashedWheelUnsorted<&str> = HashedWheelUnsorted::new(256);

    // START_TIMER(Interval, Request_ID, Expiry_Action) — here the payload
    // plays the rôle of both id and action.
    let retransmit = timers
        .start_timer(TickDelta(150), "retransmit packet 7")
        .unwrap();
    timers
        .start_timer(TickDelta(500), "keepalive probe")
        .unwrap();
    timers
        .start_timer(TickDelta(100_000), "connection teardown")
        .unwrap();
    println!("outstanding timers: {}", timers.outstanding());

    // The ack arrives before the timeout: STOP_TIMER in O(1).
    let cancelled = timers.stop_timer(retransmit).unwrap();
    println!("cancelled: {cancelled}");

    // PER_TICK_BOOKKEEPING drives EXPIRY_PROCESSING.
    let mut fired = Vec::new();
    for _ in 0..100_000 {
        timers.tick(&mut |expired| fired.push(expired));
    }
    for e in &fired {
        println!("t={:>6}  EXPIRY_PROCESSING: {}", e.fired_at, e.payload);
    }
    assert_eq!(fired.len(), 2);

    // The work counters mirror the paper's §7 cost accounting.
    let c = timers.counters();
    println!(
        "\nticks={} starts={} stops={} expiries={} modeled-VAX-instr/tick={:.2}",
        c.ticks,
        c.starts,
        c.stops,
        c.expiries,
        c.vax_per_tick()
    );
}
