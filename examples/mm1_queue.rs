//! An M/M/1 queue on the event-driven simulator — §4.2's first time-flow
//! mechanism ("the earliest event is immediately retrieved … and the clock
//! jumps", the GPSS/SIMULA style), validated against queueing theory.
//!
//! For an M/M/1 queue with utilization ρ = λ/μ the mean number in system is
//! ρ/(1−ρ); we simulate and compare.
//!
//! Run with `cargo run --release --example mm1_queue`.

// Demo binary: aborting on an unexpected error is the right behavior, and
// interval arithmetic here is illustrative, not the audited tick domain.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use timing_wheels::core::{Tick, TickDelta};
use timing_wheels::des::{EventDrivenDes, Scheduler};

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival,
    Departure,
}

/// Exponential sample with the given mean, discretized to ≥ 1 tick.
fn exp_ticks(rng: &mut u64, mean: f64) -> TickDelta {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let u = ((*rng >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    TickDelta(((-mean * u.ln()).ceil() as u64).max(1))
}

fn simulate(lambda: f64, mu: f64, horizon: u64, seed: u64) -> (f64, u64) {
    let mut des: EventDrivenDes<Ev> = EventDrivenDes::new();
    let mut rng = seed;
    let mean_arrival = 1.0 / lambda;
    let mean_service = 1.0 / mu;

    let mut in_system: u64 = 0;
    // Time-weighted average of the queue length.
    let mut last_change = Tick::ZERO;
    let mut area: f64 = 0.0;
    let mut served: u64 = 0;

    let gap = exp_ticks(&mut rng, mean_arrival);
    des.schedule(gap, Ev::Arrival).unwrap();
    des.run_until(Tick(horizon), |des, ev| {
        let now = des.now();
        area += in_system as f64 * now.since(last_change).as_u64() as f64;
        last_change = now;
        match ev {
            Ev::Arrival => {
                in_system += 1;
                if in_system == 1 {
                    // Idle server starts on the new customer immediately.
                    let s = exp_ticks(&mut rng, mean_service);
                    des.schedule(s, Ev::Departure).unwrap();
                }
                let gap = exp_ticks(&mut rng, mean_arrival);
                des.schedule(gap, Ev::Arrival).unwrap();
            }
            Ev::Departure => {
                in_system -= 1;
                served += 1;
                if in_system > 0 {
                    let s = exp_ticks(&mut rng, mean_service);
                    des.schedule(s, Ev::Departure).unwrap();
                }
            }
        }
    });
    area += in_system as f64 * Tick(horizon).since(last_change).as_u64() as f64;
    (area / horizon as f64, served)
}

fn main() {
    println!("M/M/1 on the event-driven simulator vs ρ/(1−ρ)\n");
    println!(
        "{:>5} {:>5} {:>6} {:>12} {:>12} {:>10}",
        "λ", "μ", "ρ", "measured L", "theory L", "served"
    );
    for (lambda, mu) in [(0.001, 0.01), (0.005, 0.01), (0.008, 0.01), (0.009, 0.01)] {
        let rho: f64 = lambda / mu;
        let (l, served) = simulate(lambda, mu, 40_000_000, 42);
        let theory = rho / (1.0 - rho);
        println!("{lambda:>5} {mu:>5} {rho:>6.2} {l:>12.3} {theory:>12.3} {served:>10}");
    }
    println!("\nthe event list here is the binary-heap priority queue of §4.1 — the same");
    println!("data-structure family the paper relates to timer modules; the clock jumps");
    println!("between events instead of stepping ticks.");
}
