//! Rate-based flow control (§1's "algorithms in which the notion of time is
//! integral"): a token bucket whose refill timer always expires, shaping an
//! offered load down to a configured rate.
//!
//! Run with `cargo run --release --example rate_control`.

// Demo binary: aborting on an unexpected error is the right behavior, and
// interval arithmetic here is illustrative, not the audited tick domain.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use timing_wheels::core::wheel::BasicWheel;
use timing_wheels::core::Tick;
use timing_wheels::netsim::{run_rate_control, RateConfig};

fn main() {
    println!("token-bucket shaping over a Scheme 4 wheel (refill timer always expires)\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "scenario", "admitted/t", "dropped", "refills"
    );
    for (label, cfg) in [
        (
            "overload 0.9 -> 0.2/tick",
            RateConfig {
                capacity: 10,
                refill_tokens: 1,
                refill_every: 5,
                offered_rate: 0.9,
                seed: 1,
            },
        ),
        (
            "underload 0.1 vs 0.5/tick",
            RateConfig {
                capacity: 50,
                refill_tokens: 5,
                refill_every: 10,
                offered_rate: 0.1,
                seed: 2,
            },
        ),
        (
            "burst-absorbing capacity",
            RateConfig {
                capacity: 500,
                refill_tokens: 1,
                refill_every: 4,
                offered_rate: 2.0,
                seed: 3,
            },
        ),
    ] {
        let mut wheel: BasicWheel<()> = BasicWheel::new(64);
        let r = run_rate_control(&mut wheel, &cfg, Tick(100_000));
        println!(
            "{label:<26} {:>10.3} {:>10} {:>10}",
            r.admitted_rate, r.dropped, r.refills
        );
    }
    println!("\nthe refill timer fires every interval without fail — the timer class the");
    println!("paper notes \"almost always expire\", the opposite of retransmission timers.");
}
