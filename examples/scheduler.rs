//! A preemptive round-robin CPU scheduler driven by quantum timers — the
//! §1 "scheduling algorithms" class of timer use, where the timer *always*
//! expires unless the process blocks first.
//!
//! Each running process gets a quantum timer; if it blocks for simulated
//! I/O before the quantum ends, the timer is stopped (the §1 "stopped
//! before expiry" path); otherwise the expiry preempts it. I/O completions
//! are timers too.
//!
//! Run with `cargo run --release --example scheduler`.

// Demo binary: aborting on an unexpected error is the right behavior, and
// interval arithmetic here is illustrative, not the audited tick domain.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use std::collections::VecDeque;

use timing_wheels::prelude::*;

const QUANTUM: u64 = 50;
const PROCS: usize = 6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    QuantumExpired(usize),
    IoDone(usize),
}

struct Proc {
    remaining_cpu: u64,
    cpu_got: u64,
    io_every: u64, // blocks after this much CPU (0 = CPU-bound)
    since_io: u64,
    preemptions: u64,
    io_waits: u64,
}

fn main() {
    let mut timers: HashedWheelUnsorted<Ev> = HashedWheelUnsorted::new(128);
    let mut procs: Vec<Proc> = (0..PROCS)
        .map(|i| Proc {
            remaining_cpu: 2_000,
            cpu_got: 0,
            io_every: if i % 2 == 0 { 0 } else { 120 }, // half I/O-bound
            since_io: 0,
            preemptions: 0,
            io_waits: 0,
        })
        .collect();
    let mut ready: VecDeque<usize> = (0..PROCS).collect();
    let mut running: Option<(usize, TimerHandle, u64)> = None; // (pid, quantum timer, slice start)
    let mut finished = 0usize;
    let mut idle_ticks = 0u64;

    while finished < PROCS {
        // Dispatch if the CPU is free.
        if running.is_none() {
            if let Some(pid) = ready.pop_front() {
                let h = timers
                    .start_timer(TickDelta(QUANTUM), Ev::QuantumExpired(pid))
                    .unwrap();
                running = Some((pid, h, timers.now().as_u64()));
            } else {
                idle_ticks += 1;
            }
        }
        // One tick of CPU time (and of the clock).
        let mut fired = Vec::new();
        timers.tick(&mut |e| fired.push(e.payload));

        // Account the running process's progress for this tick.
        let mut block_for_io = None;
        if let Some((pid, _, _)) = running {
            let p = &mut procs[pid];
            p.remaining_cpu -= 1;
            p.cpu_got += 1;
            p.since_io += 1;
            if p.remaining_cpu == 0 {
                finished += 1;
                block_for_io = Some((pid, true));
            } else if p.io_every > 0 && p.since_io >= p.io_every {
                block_for_io = Some((pid, false));
            }
        }
        if let Some((pid, done)) = block_for_io {
            let (_, quantum, _) = running.take().expect("pid was running");
            // The process left the CPU voluntarily: stop its quantum timer
            // (the ack-arrived path of §1).
            let _ = timers.stop_timer(quantum);
            if !done {
                let p = &mut procs[pid];
                p.since_io = 0;
                p.io_waits += 1;
                timers
                    .start_timer(TickDelta(30 + (pid as u64 * 7) % 40), Ev::IoDone(pid))
                    .unwrap();
            }
        }
        for ev in fired {
            match ev {
                Ev::QuantumExpired(pid) => {
                    // Only meaningful if that process is still on the CPU.
                    if let Some((cur, _, _)) = running {
                        if cur == pid {
                            running = None;
                            procs[pid].preemptions += 1;
                            ready.push_back(pid);
                        }
                    }
                }
                Ev::IoDone(pid) => ready.push_back(pid),
            }
        }
    }

    println!("round-robin over a Scheme 6 wheel: quantum={QUANTUM}, {PROCS} processes\n");
    println!(
        "{:>4} {:>9} {:>8} {:>12} {:>9}",
        "pid", "cpu", "io", "preemptions", "profile"
    );
    for (pid, p) in procs.iter().enumerate() {
        println!(
            "{pid:>4} {:>9} {:>8} {:>12} {:>9}",
            p.cpu_got,
            p.io_waits,
            p.preemptions,
            if p.io_every == 0 { "cpu" } else { "io" }
        );
    }
    let c = timers.counters();
    println!(
        "\ntotal ticks {} (idle {idle_ticks}); timer starts {}, stops {}, expiries {}",
        c.ticks, c.starts, c.stops, c.expiries
    );
    println!("CPU-bound processes burn full quanta (timers expire); I/O-bound ones");
    println!("stop their quantum timers early — both §1 regimes in one scheduler.");
}
