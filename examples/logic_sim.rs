//! Gate-level logic simulation scheduled by a timing wheel — the domain the
//! wheel technique came from (§4.2: TEGAS, DECSIM).
//!
//! Builds a 4-bit ripple-carry adder, feeds it test vectors, and prints the
//! settled outputs plus the waveform of the carry chain.
//!
//! Run with `cargo run --example logic_sim`.

// Demo binary: aborting on an unexpected error is the right behavior, and
// interval arithmetic here is illustrative, not the audited tick domain.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use timing_wheels::des::{Circuit, GateKind, LogicSim, NetId, RotationPolicy, SimWheel};

/// One-bit full adder; returns (sum, carry-out).
fn full_adder(c: &mut Circuit, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
    let axb = c.gate(GateKind::Xor, &[a, b], 1);
    let sum = c.gate(GateKind::Xor, &[axb, cin], 1);
    let and1 = c.gate(GateKind::And, &[a, b], 1);
    let and2 = c.gate(GateKind::And, &[axb, cin], 1);
    let cout = c.gate(GateKind::Or, &[and1, and2], 2); // slower carry gate
    (sum, cout)
}

fn main() {
    let mut c = Circuit::new();
    let a: Vec<NetId> = (0..4).map(|_| c.net()).collect();
    let b: Vec<NetId> = (0..4).map(|_| c.net()).collect();
    let zero = c.net();
    let mut carry = zero;
    let mut sums = Vec::new();
    let mut carries = Vec::new();
    for i in 0..4 {
        let (s, co) = full_adder(&mut c, a[i], b[i], carry);
        sums.push(s);
        carries.push(co);
        carry = co;
    }
    println!(
        "circuit: {} gates, {} nets (4-bit ripple-carry adder)",
        c.gate_count(),
        c.net_count()
    );

    // The event list is the Figure 7 simulation wheel.
    let mut sim = LogicSim::new(c, SimWheel::new(64, RotationPolicy::OnWrap));
    for &net in &carries {
        sim.monitor(net);
    }

    for (av, bv) in [(3u64, 5u64), (9, 9), (15, 1), (7, 8)] {
        for i in 0..4 {
            sim.set_input(a[i], (av >> i) & 1 != 0);
            sim.set_input(b[i], (bv >> i) & 1 != 0);
        }
        sim.initialize();
        sim.settle(1_000);
        let mut got = 0u64;
        for (i, &s) in sums.iter().enumerate() {
            got |= u64::from(sim.value(s)) << i;
        }
        got |= u64::from(sim.value(carry)) << 4;
        println!(
            "t={:>4}  {av:2} + {bv:2} = {got:2}  (evaluations so far: {})",
            sim.now(),
            sim.evaluations()
        );
        assert_eq!(got, av + bv);
    }

    println!("\ncarry-chain waveform (selective tracing — only real transitions):");
    for t in sim.waveform() {
        println!(
            "  t={:>4}  carry[{}] -> {}",
            t.at,
            carries.iter().position(|&n| n == t.net).unwrap(),
            u8::from(t.value)
        );
    }
}
