//! The paper's §6.2 worked example, live: a hierarchical wheel shaped like
//! a clock (60 s / 60 m / 24 h / 100 d — 244 slots spanning 8.64 million
//! seconds) with timers that migrate between arrays as in Figures 10–11.
//!
//! Run with `cargo run --release --example cron_clock`.

// Demo binary: aborting on an unexpected error is the right behavior, and
// interval arithmetic here is illustrative, not the audited tick domain.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use timing_wheels::prelude::*;

fn hms(ticks: u64) -> String {
    let (d, r) = (ticks / 86_400, ticks % 86_400);
    format!("{d}d {:02}:{:02}:{:02}", r / 3600, (r % 3600) / 60, r % 60)
}

fn main() {
    // Levels, finest first: seconds, minutes, hours, days.
    let mut wheel: HierarchicalWheel<&str> = HierarchicalWheel::new(LevelSizes::clock());
    println!(
        "clock hierarchy: 60+60+24+100 = 244 slots, range {} ticks ({})",
        wheel.max_interval(),
        hms(wheel.max_interval().as_u64()),
    );

    // Fast-forward to the paper's moment: 11 days, 10:24:30.
    let now = ((11 * 24 + 10) * 60 + 24) * 60 + 30;
    wheel.run_ticks(now);
    println!("current time: {}", hms(wheel.now().as_u64()));

    // "To set a timer of 50 minutes and 45 seconds …"
    let h = wheel
        .start_timer(TickDelta(50 * 60 + 45), "the §6.2 timer")
        .unwrap();
    let (level, slot) = wheel.locate(h).expect("just started");
    let names = ["second", "minute", "hour", "day"];
    println!(
        "timer for +50m45s lands in the {} array, slot {slot} (Figure 10)",
        names[level]
    );

    // Watch it migrate toward the second array.
    let mut last = (level, slot);
    let mut fired_at = None;
    while fired_at.is_none() {
        wheel.tick(&mut |e| fired_at = Some(e.fired_at));
        if let Some(loc) = wheel.locate(h) {
            if loc != last {
                println!(
                    "t={}  migrated to the {} array, slot {} (Figure 11)",
                    hms(wheel.now().as_u64()),
                    names[loc.0],
                    loc.1
                );
                last = loc;
            }
        }
    }
    let fired_at = fired_at.unwrap();
    println!(
        "fired at {} — exactly 11d 11:15:15, error 0 ticks",
        hms(fired_at.as_u64())
    );
    assert_eq!(fired_at.as_u64(), now + 50 * 60 + 45);

    // A handful of cron-style jobs across very different scales share the
    // same 244 slots.
    println!("\ncron-style jobs:");
    for (label, interval) in [
        ("heartbeat in 5 s", 5u64),
        ("session timeout in 30 m", 30 * 60),
        ("daily report in 24 h", 24 * 3600),
        ("cert renewal in 90 d", 90 * 86_400),
    ] {
        wheel.start_timer(TickDelta(interval), label).unwrap();
    }
    let mut fired = Vec::new();
    while wheel.outstanding() > 0 {
        wheel.tick(&mut |e| fired.push(e));
    }
    for e in fired {
        println!(
            "  {}  {}  (error {})",
            hms(e.fired_at.as_u64()),
            e.payload,
            e.error()
        );
    }
}
