//! The paper's §1 motivating scenario: a server with 200 connections and
//! several timers per connection, retransmitting over a lossy network.
//!
//! Run with `cargo run --release --example retransmit`.

// Demo binary: aborting on an unexpected error is the right behavior, and
// interval arithmetic here is illustrative, not the audited tick domain.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use timing_wheels::core::wheel::HashedWheelUnsorted;
use timing_wheels::core::{Tick, TimerScheme};
use timing_wheels::netsim::{NetConfig, NetSim};

fn main() {
    // "Consider for example a server with 200 connections and 3 timers per
    // connection" (§1). Each connection here runs retransmission,
    // keepalive, delayed-ack and time-wait timers over a 5%-lossy network.
    let cfg = NetConfig {
        loss: 0.05,
        segments_per_conn: 25,
        ..NetConfig::default()
    };
    let wheel: HashedWheelUnsorted<_> = HashedWheelUnsorted::new(1024);
    let mut sim = NetSim::new(wheel, 200, cfg);
    let metrics = sim.run(Tick(10_000_000)).clone();

    println!("connections closed:   {}/200", metrics.closed);
    println!("segments delivered:   {}", metrics.delivered);
    println!("segments lost:        {}", metrics.losses);
    println!("retransmissions:      {}", metrics.retransmissions);
    println!("keepalive probes:     {}", metrics.probes);
    println!("acks sent:            {}", metrics.acks_sent);
    println!("finished at tick:     {}", metrics.finished_at);
    println!();
    println!("timer facility traffic:");
    println!("  starts:   {}", metrics.timer_starts);
    println!("  stops:    {}", metrics.timer_stops);
    println!("  expiries: {}", metrics.timer_expiries);
    let stop_frac =
        metrics.timer_stops as f64 / (metrics.timer_stops + metrics.timer_expiries) as f64;
    println!(
        "  {:.0}% of resolved timers were stopped before expiry — the §1 regime\n  \
         where \"if failures are infrequent these timers rarely expire\".",
        stop_frac * 100.0
    );

    let c = sim.scheme().counters();
    println!(
        "\nwheel cost: {} ticks, {:.2} modeled VAX instructions per tick",
        c.ticks,
        c.vax_per_tick()
    );
}
