//! The deployable form: a timer-service thread owning a hierarchical wheel,
//! with clients talking to it over channels (Appendix A.1's host/chip split
//! done in software).
//!
//! Run with `cargo run --example timer_service`.

// Demo binary: aborting on an unexpected error is the right behavior, and
// interval arithmetic here is illustrative, not the audited tick domain.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use std::sync::Arc;
use std::time::Duration;

use timing_wheels::concurrent::TimerService;
use timing_wheels::core::wheel::{HierarchicalWheel, LevelSizes};
use timing_wheels::core::{RequestId, TickDelta};

fn main() {
    // Virtual-time service for deterministic orchestration.
    let svc = Arc::new(
        TimerService::builder(HierarchicalWheel::<RequestId>::new(LevelSizes(vec![
            64, 64, 64,
        ])))
        .spawn(),
    );

    // Four client threads schedule batches of work.
    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let mut handles = Vec::new();
                for i in 0..50u64 {
                    let id = c * 1_000 + i;
                    let h = svc.start_timer(id, TickDelta(10 + id % 97)).unwrap();
                    handles.push((id, h));
                }
                // Every third timer is cancelled — the §1 ack pattern.
                let mut kept = 0;
                for (id, h) in handles {
                    if id % 3 == 0 {
                        svc.stop_timer(h).unwrap();
                    } else {
                        kept += 1;
                    }
                }
                kept
            })
        })
        .collect();
    let kept: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    println!("scheduled 200 timers from 4 threads; {kept} survive cancellation");

    // Drive virtual time from the orchestrator.
    let fired = svc.advance(200);
    println!("advanced 200 ticks -> {fired} expiries delivered on the channel");
    let mut seen = 0;
    while let Ok(e) = svc.expiries().try_recv() {
        if seen < 5 {
            println!(
                "  expiry: id={} deadline={} fired_at={}",
                e.id, e.deadline, e.fired_at
            );
        }
        assert_eq!(e.error(), 0, "hierarchical wheel fires exactly");
        seen += 1;
    }
    println!("  … {seen} total, all exact");
    assert_eq!(seen as usize, kept);

    // And the same service against the wall clock.
    let rt = TimerService::builder(HierarchicalWheel::<RequestId>::new(LevelSizes(vec![
        64, 64,
    ])))
    .realtime(Duration::from_millis(1))
    .spawn();
    rt.start_timer(42, TickDelta(25)).unwrap();
    let e = rt
        .expiries()
        .recv_timeout(Duration::from_secs(10))
        .expect("wall-clock expiry");
    println!(
        "\nreal-time service: timer {} fired ~25 ms after start",
        e.id
    );
}
