//! Offline shim for the `rand` crate (see `shims/README.md`).
//!
//! Implements the subset used by this workspace: a seedable small RNG and
//! `gen_range`/`gen_bool` over the range shapes that appear in the code.
//! The generator is splitmix64 — a well-distributed 64-bit mixer that is
//! more than adequate for workload generation and property tests, though it
//! is not the xoshiro generator the real `rand::rngs::SmallRng` uses.

// Vendored offline shim mirroring the crates.io API surface; it is test
// infrastructure, not part of the timer facility's audited code.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Trait for seedable generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (shim of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Maps a u64 to `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Rejection-free-enough bounded sample: Lemire-style multiply-shift.
/// Bias is at most 2^-64 per draw — irrelevant for test workloads.
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let x = rng.next_u64();
    ((x as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any u64 re-interpreted is uniform.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (shim of `rand::rngs::SmallRng`): splitmix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&y));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
            let s = rng.gen_range(0usize..3);
            assert!(s < 3);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(99);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
