//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Provides the subset this workspace uses: the [`Strategy`] trait with
//! ranges / tuples / [`Just`] / [`any`] / `prop_map` / `prop_oneof!` /
//! `collection::vec`, plus the [`proptest!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros and [`ProptestConfig`]. Cases are generated
//! from a deterministic per-test seed, so failures reproduce exactly. There
//! is **no shrinking**: a failure reports the case index and the `Debug`
//! form of the failing input instead of a minimized one.

// Vendored offline shim mirroring the crates.io API surface; it is test
// infrastructure, not part of the timer facility's audited code.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values (shim of `proptest::strategy::Strategy`).
///
/// Unlike the real crate there is no value tree: `sample` directly produces
/// a value, and failing cases are not shrunk.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (shim of `.boxed()`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted union over same-valued strategies (backs `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.sample(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weight accounting")
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy on empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Full-domain strategy for primitives (shim of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// `Vec` strategy with a length drawn from `size` (shim of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy on empty size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Why a test case failed (shim of `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Assertion failure — fails the whole test.
    Fail(String),
    /// Input rejected — the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (shim of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (the real crate defaults to 256; the shim trades cases for
    /// offline-CI wall clock — override per test with `with_cases`).
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test name: stable per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines deterministic property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(base ^ (u64::from(case) << 32));
                    let input = ( $($crate::Strategy::sample(&($strat), &mut rng),)* );
                    let input_dbg = format!("{:?}", input);
                    let ($($pat,)*) = input;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case {case}/{} failed: {msg}\n  input: {input_dbg}",
                            config.cases
                        ),
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Weighted choice between strategies (shim of `proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::OneOf::new(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strat)), )+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::OneOf::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)), )+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Start(u64),
        Stop(usize),
        Tick,
    }

    fn op_strategy(max: u64) -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (1..=max).prop_map(Op::Start),
            2 => any::<usize>().prop_map(Op::Stop),
            4 => Just(Op::Tick),
        ]
    }

    #[test]
    fn oneof_covers_all_arms_and_ranges_hold() {
        let strat = op_strategy(10);
        let mut rng = TestRng::new(1);
        let (mut starts, mut stops, mut ticks) = (0, 0, 0);
        for _ in 0..1000 {
            match strat.sample(&mut rng) {
                Op::Start(j) => {
                    assert!((1..=10).contains(&j));
                    starts += 1;
                }
                Op::Stop(_) => stops += 1,
                Op::Tick => ticks += 1,
            }
        }
        assert!(starts > 200 && stops > 100 && ticks > 300);
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let strat = crate::collection::vec(0u64..5, 2..7);
        let mut rng = TestRng::new(9);
        for _ in 0..500 {
            let v = strat.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_patterns(
            ops in crate::collection::vec(op_strategy(16), 1..50),
            flip in any::<bool>(),
            scale in 1u64..100,
        ) {
            prop_assert!(!ops.is_empty());
            prop_assert!((1..100).contains(&scale));
            let _ = flip;
        }

        #[test]
        fn tuple_strategies_compose(pair in (1u64..10, 0.0f64..1.0)) {
            prop_assert!(pair.0 >= 1);
            prop_assert!(pair.1.is_sign_positive() && pair.1 < 1.0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            prop_assert_eq!(u64::from(x) * 2, u64::from(x) + u64::from(x));
        }
    }

    #[test]
    fn prop_assert_produces_err() {
        fn helper(x: u64) -> Result<(), TestCaseError> {
            prop_assert!(x < 10, "x too big: {x}");
            prop_assert_eq!(x % 2, 0);
            Ok(())
        }
        assert!(helper(4).is_ok());
        assert!(matches!(helper(12), Err(TestCaseError::Fail(_))));
        assert!(matches!(helper(3), Err(TestCaseError::Fail(_))));
    }

    #[test]
    fn cases_are_deterministic() {
        let s = crate::seed_for("a::b::c");
        assert_eq!(s, crate::seed_for("a::b::c"));
        let strat = 0u64..1000;
        let mut r1 = TestRng::new(s);
        let mut r2 = TestRng::new(s);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
