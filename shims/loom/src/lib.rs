//! Offline shim for the `loom` crate (see `shims/README.md`).
//!
//! [`model`] runs a closure under an exhaustive schedule explorer: real OS
//! threads are serialized by a token-passing scheduler, every visible
//! operation (atomic access, lock acquire/release, `yield_now`) is a
//! preemption point, and the explorer replays the closure under **every**
//! reachable interleaving via depth-first search over the schedule tree.
//!
//! Semantics vs. the real loom:
//!
//! * Sequential consistency only. All atomic orderings are strengthened to
//!   `SeqCst`, so weak-memory reorderings (`Relaxed`/`Acquire`/`Release`
//!   visibility anomalies) are **not** explored. Logic races — lost
//!   updates, double fires, protocol violations, deadlocks — are.
//! * No partial-order reduction: the explorer enumerates the full tree, so
//!   keep models to two or three threads with tens of visible ops, as loom
//!   models conventionally are anyway.
//! * Deadlocks (all unfinished threads blocked) panic with a diagnostic,
//!   as does a schedule-count explosion past [`MAX_SCHEDULES`].

#![deny(unsafe_code)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

/// Upper bound on explored schedules before the explorer gives up.
pub const MAX_SCHEDULES: usize = 500_000;

/// How long a parked thread waits before declaring the scheduler stalled.
/// Any legitimate wait ends as soon as another thread hands the token over;
/// hitting this means a shim bug, not a slow model.
const STALL_TIMEOUT: Duration = Duration::from_secs(30);

fn lock_ignore_poison<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum TState {
    Runnable,
    BlockedOnLock(u64),
    BlockedOnJoin(usize),
    Finished,
}

struct State {
    threads: Vec<TState>,
    /// Thread holding the run token (`usize::MAX` once all are finished).
    current: usize,
    /// Replay prefix: decision indices to take before free exploration.
    path: Vec<usize>,
    /// Decisions taken this execution: `(choice, enabled_count)`.
    log: Vec<(usize, usize)>,
    depth: usize,
    /// Model-level lock table: lock id -> holder tid.
    locks: HashMap<u64, usize>,
    /// Set on deadlock or internal error; all parked threads unwind.
    poisoned: Option<String>,
    /// A spawned thread panicked (payload lives in its result slot).
    thread_panicked: bool,
    all_done: bool,
}

struct Sched {
    state: StdMutex<State>,
    cv: Condvar,
}

impl Sched {
    fn new(path: Vec<usize>) -> Sched {
        Sched {
            state: StdMutex::new(State {
                threads: vec![TState::Runnable],
                current: 0,
                path,
                log: Vec::new(),
                depth: 0,
                locks: HashMap::new(),
                poisoned: None,
                thread_panicked: false,
                all_done: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Picks the next thread to run among runnable ones, consuming one
    /// decision from the replay path (or extending the log in DFS order).
    /// Returns `None` when every thread has finished.
    fn pick(&self, st: &mut State) -> Option<usize> {
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == TState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.threads.iter().all(|t| *t == TState::Finished) {
                st.all_done = true;
                st.current = usize::MAX;
                self.cv.notify_all();
                return None;
            }
            let msg = format!(
                "loom: deadlock — no runnable threads, states: {:?}, locks: {:?}",
                st.threads, st.locks
            );
            st.poisoned = Some(msg.clone());
            self.cv.notify_all();
            panic!("{msg}");
        }
        let choice = if st.depth < st.path.len() {
            let c = st.path[st.depth];
            assert!(
                c < enabled.len(),
                "loom: non-deterministic model (replay choice {c} of {} enabled)",
                enabled.len()
            );
            c
        } else {
            0
        };
        st.log.push((choice, enabled.len()));
        st.depth += 1;
        Some(enabled[choice])
    }

    /// Parks the calling thread until it holds the run token.
    fn wait_for_token(&self, mut st: StdMutexGuard<'_, State>, me: usize) {
        while st.current != me {
            if let Some(msg) = &st.poisoned {
                let msg = msg.clone();
                drop(st);
                panic!("loom: model poisoned: {msg}");
            }
            if st.all_done {
                drop(st);
                panic!("loom: scheduled after model completion");
            }
            let (guard, timeout) = self
                .cv
                .wait_timeout(st, STALL_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if timeout.timed_out() && st.current != me {
                let msg = "loom: scheduler stalled (internal shim bug)".to_string();
                st.poisoned = Some(msg.clone());
                self.cv.notify_all();
                drop(st);
                panic!("{msg}");
            }
        }
    }

    /// A visible operation is about to run on `me`: give every other
    /// runnable thread the chance to run first.
    fn schedule_point(&self, me: usize) {
        let mut st = lock_ignore_poison(&self.state);
        debug_assert_eq!(st.current, me, "schedule point without the token");
        let next = match self.pick(&mut st) {
            Some(n) => n,
            None => return,
        };
        if next == me {
            return;
        }
        st.current = next;
        self.cv.notify_all();
        self.wait_for_token(st, me);
    }

    fn register_thread(&self) -> usize {
        let mut st = lock_ignore_poison(&self.state);
        st.threads.push(TState::Runnable);
        st.threads.len() - 1
    }

    /// First park of a freshly spawned thread: wait to be scheduled at all.
    fn wait_first_schedule(&self, me: usize) {
        let st = lock_ignore_poison(&self.state);
        self.wait_for_token(st, me);
    }

    /// Model-level mutex acquire (caller already passed a schedule point).
    fn acquire_lock(&self, me: usize, lock_id: u64) {
        let mut st = lock_ignore_poison(&self.state);
        loop {
            if let std::collections::hash_map::Entry::Vacant(e) = st.locks.entry(lock_id) {
                e.insert(me);
                return;
            }
            assert_ne!(st.locks[&lock_id], me, "loom: recursive lock");
            st.threads[me] = TState::BlockedOnLock(lock_id);
            let next = self.pick(&mut st).expect("blocked thread outlives model");
            debug_assert_ne!(next, me);
            st.current = next;
            self.cv.notify_all();
            // Wait until the holder releases (making us runnable) AND a
            // scheduling decision hands us the token.
            self.wait_for_token(st, me);
            st = lock_ignore_poison(&self.state);
        }
    }

    /// Returns whether the model-level lock is free (for `try_lock`).
    fn try_acquire_lock(&self, me: usize, lock_id: u64) -> bool {
        let mut st = lock_ignore_poison(&self.state);
        if let std::collections::hash_map::Entry::Vacant(e) = st.locks.entry(lock_id) {
            e.insert(me);
            true
        } else {
            false
        }
    }

    fn release_lock(&self, me: usize, lock_id: u64) {
        let mut st = lock_ignore_poison(&self.state);
        let holder = st.locks.remove(&lock_id);
        debug_assert_eq!(holder, Some(me), "unlock by non-holder");
        for t in st.threads.iter_mut() {
            if *t == TState::BlockedOnLock(lock_id) {
                *t = TState::Runnable;
            }
        }
    }

    /// Blocks `me` until `target` finishes.
    fn join_thread(&self, me: usize, target: usize) {
        let mut st = lock_ignore_poison(&self.state);
        while st.threads[target] != TState::Finished {
            st.threads[me] = TState::BlockedOnJoin(target);
            let next = self.pick(&mut st).expect("blocked thread outlives model");
            debug_assert_ne!(next, me);
            st.current = next;
            self.cv.notify_all();
            self.wait_for_token(st, me);
            st = lock_ignore_poison(&self.state);
        }
    }

    /// Marks `me` finished and hands the token onward.
    fn finish_thread(&self, me: usize, panicked: bool) {
        let mut st = lock_ignore_poison(&self.state);
        st.threads[me] = TState::Finished;
        if panicked {
            st.thread_panicked = true;
        }
        for t in st.threads.iter_mut() {
            if *t == TState::BlockedOnJoin(me) {
                *t = TState::Runnable;
            }
        }
        if st.poisoned.is_some() {
            self.cv.notify_all();
            return;
        }
        // When pick() returns None everyone is done and it already notified.
        if let Some(next) = self.pick(&mut st) {
            st.current = next;
            self.cv.notify_all();
        }
    }

    /// Parks the driver until every thread has finished this execution.
    fn wait_all_done(&self) {
        let mut st = lock_ignore_poison(&self.state);
        while !st.all_done {
            if let Some(msg) = &st.poisoned {
                let msg = msg.clone();
                drop(st);
                panic!("loom: model poisoned: {msg}");
            }
            let (guard, timeout) = self
                .cv
                .wait_timeout(st, STALL_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if timeout.timed_out() && !st.all_done {
                let msg = "loom: stalled waiting for spawned threads".to_string();
                st.poisoned = Some(msg.clone());
                self.cv.notify_all();
                drop(st);
                panic!("{msg}");
            }
        }
    }

    /// Next DFS path after this execution, or `None` when exhausted.
    fn next_path(&self) -> Option<Vec<usize>> {
        let st = lock_ignore_poison(&self.state);
        let log = &st.log;
        for i in (0..log.len()).rev() {
            let (choice, enabled) = log[i];
            if choice + 1 < enabled {
                let mut path: Vec<usize> = log[..i].iter().map(|&(c, _)| c).collect();
                path.push(choice + 1);
                return Some(path);
            }
        }
        None
    }

    fn thread_panicked(&self) -> bool {
        lock_ignore_poison(&self.state).thread_panicked
    }
}

// ---------------------------------------------------------------------------
// Per-thread execution context
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Ctx {
    sched: StdArc<Sched>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Visible-operation hook: outside a model this is free; inside, it is a
/// preemption point the explorer branches on.
fn visible_op() {
    if let Some(ctx) = current_ctx() {
        ctx.sched.schedule_point(ctx.tid);
    }
}

struct CtxGuard;

impl Drop for CtxGuard {
    fn drop(&mut self) {
        set_ctx(None);
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Serializes concurrent `model()` calls from the multithreaded test
/// harness: one exploration at a time keeps OS-thread counts sane.
static GLOBAL_MODEL_LOCK: StdMutex<()> = StdMutex::new(());

/// Explores every interleaving of the given model closure.
///
/// Panics (failing the enclosing test) if any execution panics, deadlocks,
/// or a spawned thread's panic goes unjoined.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let _serial = GLOBAL_MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut path: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        assert!(
            schedules <= MAX_SCHEDULES,
            "loom: exceeded {MAX_SCHEDULES} schedules — simplify the model"
        );
        let sched = StdArc::new(Sched::new(std::mem::take(&mut path)));
        set_ctx(Some(Ctx {
            sched: StdArc::clone(&sched),
            tid: 0,
        }));
        let guard = CtxGuard;
        let result = catch_unwind(AssertUnwindSafe(&f));
        match &result {
            Ok(()) => {
                sched.finish_thread(0, false);
                sched.wait_all_done();
            }
            Err(_) => {
                // Main panicked: poison so spawned threads unwind too.
                let mut st = lock_ignore_poison(&sched.state);
                st.poisoned = Some("main model thread panicked".to_string());
                sched.cv.notify_all();
                drop(st);
            }
        }
        drop(guard);
        if let Err(payload) = result {
            eprintln!("loom: failing schedule found after {schedules} executions");
            resume_unwind(payload);
        }
        if sched.thread_panicked() {
            eprintln!("loom: failing schedule found after {schedules} executions");
            panic!("loom: spawned thread panicked (join its handle to see the payload)");
        }
        match sched.next_path() {
            Some(p) => path = p,
            None => break,
        }
    }
    eprintln!("loom: explored {schedules} schedules");
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

pub mod thread {
    use super::*;

    type ResultSlot<T> = StdArc<StdMutex<Option<std::thread::Result<T>>>>;

    /// Handle to a model-managed thread (shim of `loom::thread::JoinHandle`).
    pub struct JoinHandle<T> {
        sched: StdArc<Sched>,
        tid: usize,
        slot: ResultSlot<T>,
        os: Option<std::thread::JoinHandle<()>>,
    }

    impl<T> JoinHandle<T> {
        /// Blocks (at model level) until the thread finishes.
        pub fn join(mut self) -> std::thread::Result<T> {
            let ctx = current_ctx().expect("JoinHandle::join outside loom::model");
            debug_assert!(
                StdArc::ptr_eq(&ctx.sched, &self.sched),
                "join across model instances"
            );
            self.sched.join_thread(ctx.tid, self.tid);
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            lock_ignore_poison(&self.slot)
                .take()
                .expect("thread finished without storing a result")
        }
    }

    /// Spawns a model-managed thread (shim of `loom::thread::spawn`).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let ctx = current_ctx().expect("loom::thread::spawn outside loom::model");
        let tid = ctx.sched.register_thread();
        let slot: ResultSlot<T> = StdArc::new(StdMutex::new(None));
        let slot2 = StdArc::clone(&slot);
        let sched2 = StdArc::clone(&ctx.sched);
        let os = std::thread::Builder::new()
            .name(format!("loom-model-{tid}"))
            .spawn(move || {
                set_ctx(Some(Ctx {
                    sched: StdArc::clone(&sched2),
                    tid,
                }));
                let _guard = CtxGuard;
                sched2.wait_first_schedule(tid);
                let result = catch_unwind(AssertUnwindSafe(f));
                let panicked = result.is_err();
                *lock_ignore_poison(&slot2) = Some(result);
                sched2.finish_thread(tid, panicked);
            })
            .expect("spawn loom model thread");
        JoinHandle {
            sched: ctx.sched,
            tid,
            slot,
            os: Some(os),
        }
    }

    /// A pure preemption point (shim of `loom::thread::yield_now`).
    pub fn yield_now() {
        visible_op();
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

pub mod sync {
    use super::*;
    use std::ops::{Deref, DerefMut};

    /// The shim does not track reference counts for leak detection, so
    /// std's `Arc` serves directly.
    pub use std::sync::Arc;

    static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);

    /// Model-aware mutex (shim of `loom::sync::Mutex`).
    ///
    /// Lock state lives in the scheduler, so a "blocked" thread hands the
    /// run token over instead of blocking the OS thread, and every
    /// acquire/release is a preemption point.
    pub struct Mutex<T> {
        id: u64,
        inner: StdMutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                id: NEXT_LOCK_ID.fetch_add(1, StdOrdering::Relaxed),
                inner: StdMutex::new(value),
            }
        }

        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            if let Some(ctx) = current_ctx() {
                ctx.sched.schedule_point(ctx.tid);
                ctx.sched.acquire_lock(ctx.tid, self.id);
                // Model-level exclusivity makes the std lock uncontended.
                let guard = self
                    .inner
                    .try_lock()
                    .expect("model-level lock exclusivity violated");
                Ok(MutexGuard {
                    lock: self,
                    guard: Some(guard),
                    modeled: true,
                })
            } else {
                // Outside a model: behave as a plain std mutex.
                let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock: self,
                    guard: Some(guard),
                    modeled: false,
                })
            }
        }

        pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
            if let Some(ctx) = current_ctx() {
                ctx.sched.schedule_point(ctx.tid);
                if !ctx.sched.try_acquire_lock(ctx.tid, self.id) {
                    return Err(std::sync::TryLockError::WouldBlock);
                }
                let guard = self
                    .inner
                    .try_lock()
                    .expect("model-level lock exclusivity violated");
                Ok(MutexGuard {
                    lock: self,
                    guard: Some(guard),
                    modeled: true,
                })
            } else {
                match self.inner.try_lock() {
                    Ok(g) => Ok(MutexGuard {
                        lock: self,
                        guard: Some(g),
                        modeled: false,
                    }),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        Err(std::sync::TryLockError::WouldBlock)
                    }
                    Err(std::sync::TryLockError::Poisoned(p)) => Ok(MutexGuard {
                        lock: self,
                        guard: Some(p.into_inner()),
                        modeled: false,
                    }),
                }
            }
        }

        pub fn into_inner(self) -> std::sync::LockResult<T> {
            Ok(self.inner.into_inner().unwrap_or_else(|e| e.into_inner()))
        }
    }

    /// RAII guard for [`Mutex`]; release is a preemption point.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        guard: Option<StdMutexGuard<'a, T>>,
        /// Whether the model-level lock table holds this lock (acquired
        /// inside a model) and must be released on drop.
        modeled: bool,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard taken")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the std guard first so the next model-level holder
            // finds it free, then the model-level lock, with a preemption
            // point so "released but not yet past the next op" schedules
            // are explored.
            self.guard.take();
            if !self.modeled {
                return;
            }
            if let Some(ctx) = current_ctx() {
                // During a panic unwind the scheduler may already be
                // poisoned; just release so other threads can make progress.
                if !std::thread::panicking() {
                    ctx.sched.schedule_point(ctx.tid);
                }
                ctx.sched.release_lock(ctx.tid, self.lock.id);
            }
        }
    }

    pub mod atomic {
        use super::super::visible_op;
        pub use std::sync::atomic::Ordering;

        /// Memory fence: a preemption point (ordering is SeqCst anyway).
        pub fn fence(_order: Ordering) {
            visible_op();
        }

        macro_rules! atomic_int {
            ($name:ident, $std:ident, $t:ty) => {
                /// Model-aware atomic: every access is a preemption point,
                /// all orderings strengthened to SeqCst.
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: std::sync::atomic::$std,
                }

                impl $name {
                    pub fn new(v: $t) -> Self {
                        Self {
                            inner: std::sync::atomic::$std::new(v),
                        }
                    }

                    pub fn load(&self, _o: Ordering) -> $t {
                        visible_op();
                        self.inner.load(Ordering::SeqCst)
                    }

                    pub fn store(&self, v: $t, _o: Ordering) {
                        visible_op();
                        self.inner.store(v, Ordering::SeqCst)
                    }

                    pub fn swap(&self, v: $t, _o: Ordering) -> $t {
                        visible_op();
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $t,
                        new: $t,
                        _s: Ordering,
                        _f: Ordering,
                    ) -> Result<$t, $t> {
                        visible_op();
                        self.inner.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    }

                    pub fn compare_exchange_weak(
                        &self,
                        current: $t,
                        new: $t,
                        s: Ordering,
                        f: Ordering,
                    ) -> Result<$t, $t> {
                        // No spurious failures in the shim.
                        self.compare_exchange(current, new, s, f)
                    }

                    pub fn fetch_add(&self, v: $t, _o: Ordering) -> $t {
                        visible_op();
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }

                    pub fn fetch_sub(&self, v: $t, _o: Ordering) -> $t {
                        visible_op();
                        self.inner.fetch_sub(v, Ordering::SeqCst)
                    }

                    pub fn fetch_or(&self, v: $t, _o: Ordering) -> $t {
                        visible_op();
                        self.inner.fetch_or(v, Ordering::SeqCst)
                    }

                    pub fn fetch_and(&self, v: $t, _o: Ordering) -> $t {
                        visible_op();
                        self.inner.fetch_and(v, Ordering::SeqCst)
                    }

                    pub fn fetch_max(&self, v: $t, _o: Ordering) -> $t {
                        visible_op();
                        self.inner.fetch_max(v, Ordering::SeqCst)
                    }

                    pub fn fetch_min(&self, v: $t, _o: Ordering) -> $t {
                        visible_op();
                        self.inner.fetch_min(v, Ordering::SeqCst)
                    }

                    pub fn into_inner(self) -> $t {
                        self.inner.into_inner()
                    }
                }
            };
        }

        atomic_int!(AtomicU8, AtomicU8, u8);
        atomic_int!(AtomicU16, AtomicU16, u16);
        atomic_int!(AtomicU32, AtomicU32, u32);
        atomic_int!(AtomicU64, AtomicU64, u64);
        atomic_int!(AtomicUsize, AtomicUsize, usize);
        atomic_int!(AtomicI64, AtomicI64, i64);

        /// Model-aware atomic bool; every access is a preemption point.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                Self {
                    inner: std::sync::atomic::AtomicBool::new(v),
                }
            }

            pub fn load(&self, _o: Ordering) -> bool {
                visible_op();
                self.inner.load(Ordering::SeqCst)
            }

            pub fn store(&self, v: bool, _o: Ordering) {
                visible_op();
                self.inner.store(v, Ordering::SeqCst)
            }

            pub fn swap(&self, v: bool, _o: Ordering) -> bool {
                visible_op();
                self.inner.swap(v, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                _s: Ordering,
                _f: Ordering,
            ) -> Result<bool, bool> {
                visible_op();
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            pub fn fetch_or(&self, v: bool, _o: Ordering) -> bool {
                visible_op();
                self.inner.fetch_or(v, Ordering::SeqCst)
            }

            pub fn fetch_and(&self, v: bool, _o: Ordering) -> bool {
                visible_op();
                self.inner.fetch_and(v, Ordering::SeqCst)
            }

            pub fn into_inner(self) -> bool {
                self.inner.into_inner()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Self-tests: the checker must find known races and pass known-correct code
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};
    use super::thread;

    #[test]
    fn finds_the_classic_lost_update() {
        // Unsynchronized read-modify-write on two threads: the model MUST
        // discover the interleaving where one increment is lost.
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let v = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let v = Arc::clone(&v);
                        thread::spawn(move || {
                            let cur = v.load(Ordering::SeqCst);
                            v.store(cur + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(v.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(result.is_err(), "model checker missed the lost update");
    }

    #[test]
    fn passes_the_fetch_add_fix() {
        super::model(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let v = Arc::clone(&v);
                    thread::spawn(move || {
                        v.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(v.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        super::model(|| {
            let v = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let v = Arc::clone(&v);
                    thread::spawn(move || {
                        let mut g = v.lock().unwrap();
                        let cur = *g;
                        *g = cur + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*v.lock().unwrap(), 2);
        });
    }

    #[test]
    fn mutex_and_atomic_protocol() {
        // A tiny release protocol: writer stores data under the lock then
        // sets a flag; reader seeing the flag must see the data.
        super::model(|| {
            let data = Arc::new(Mutex::new(0u64));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let w = thread::spawn(move || {
                *d2.lock().unwrap() = 42;
                f2.store(1, Ordering::SeqCst);
            });
            if flag.load(Ordering::SeqCst) == 1 {
                assert_eq!(*data.lock().unwrap(), 42);
            }
            w.join().unwrap();
        });
    }

    #[test]
    fn detects_deadlock() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                {
                    let _gb = b.lock().unwrap();
                    let _ga = a.lock().unwrap();
                }
                let _ = t.join();
            });
        });
        assert!(result.is_err(), "model checker missed the AB-BA deadlock");
    }

    #[test]
    fn exploration_is_exhaustive_for_three_threads() {
        use std::sync::atomic::{AtomicUsize as StdAtomic, Ordering as StdOrd};
        // Count executions: 3 independent single-op threads have at least
        // 3! = 6 completion orders; the DFS must run more than one.
        static RUNS: StdAtomic = StdAtomic::new(0);
        RUNS.store(0, StdOrd::SeqCst);
        super::model(|| {
            RUNS.fetch_add(1, StdOrd::SeqCst);
            let v = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let v = Arc::clone(&v);
                    thread::spawn(move || {
                        v.fetch_add(i, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(v.load(Ordering::SeqCst), 3);
        });
        assert!(RUNS.load(StdOrd::SeqCst) >= 6, "too few schedules explored");
    }
}
