//! Offline shim for the `criterion` crate (see `shims/README.md`).
//!
//! A timing harness, not a statistics engine: each benchmark warms up for
//! `warm_up_time`, then runs timed batches until `measurement_time` elapses
//! (at least `sample_size` batches), and prints mean / median / min
//! nanoseconds per iteration to stdout. No outlier analysis, no HTML
//! reports, no baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let stats = run_bench(self, &mut f);
        stats.report(&id, None);
    }
}

/// Throughput annotation: reported as elements/sec alongside ns/iter.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier (shim of `criterion::BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl ToString, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.to_string(), parameter),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let stats = run_bench(self.criterion, &mut |b| f(b, input));
        let label = format!("{}/{}", self.name, id.label);
        stats.report(&label, self.throughput);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let stats = run_bench(self.criterion, &mut |b| f(b));
        let label = format!("{}/{}", self.name, id.into());
        stats.report(&label, self.throughput);
    }

    pub fn finish(self) {}
}

/// Per-sample measurement driver passed to the bench closure.
pub struct Bencher {
    mode: BenchMode,
    /// Total elapsed across timed iterations of this sample.
    elapsed: Duration,
    /// Number of timed iterations of this sample.
    iters: u64,
}

enum BenchMode {
    WarmUp,
    Measure,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::WarmUp => {
                black_box(routine());
                self.iters = 1;
            }
            BenchMode::Measure => {
                // One probe iteration sizes a batch of ~50µs so that
                // sub-microsecond routines are not swamped by clock-read
                // overhead, while multi-millisecond routines run once.
                let start = Instant::now();
                black_box(routine());
                let single = start.elapsed();
                let budget = Duration::from_micros(50);
                let extra = if single >= budget {
                    0
                } else {
                    let single_ns = single.as_nanos().max(1);
                    (budget.as_nanos() / single_ns).min(4095) as u64
                };
                for _ in 0..extra {
                    black_box(routine());
                }
                self.elapsed += start.elapsed();
                self.iters += 1 + extra;
            }
        }
    }
}

struct Stats {
    samples_ns: Vec<f64>,
}

impl Stats {
    fn report(&self, label: &str, throughput: Option<Throughput>) {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let median = s[s.len() / 2];
        let min = s[0];
        let mut line = format!(
            "{label:<55} mean {mean:>12.1} ns  median {median:>12.1} ns  min {min:>12.1} ns"
        );
        if let Some(Throughput::Elements(n)) = throughput {
            let eps = n as f64 / (median * 1e-9);
            line.push_str(&format!("  ({eps:.0} elem/s)"));
        }
        println!("{line}");
    }
}

fn run_bench(c: &Criterion, f: &mut dyn FnMut(&mut Bencher)) -> Stats {
    // Warm-up: run untimed samples until the warm-up budget is spent.
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            mode: BenchMode::WarmUp,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if warm_start.elapsed() >= c.warm_up_time {
            break;
        }
    }
    // Measurement: timed samples until the budget AND sample count are met.
    let mut samples_ns = Vec::with_capacity(c.sample_size);
    let meas_start = Instant::now();
    while samples_ns.len() < c.sample_size || meas_start.elapsed() < c.measurement_time {
        let mut b = Bencher {
            mode: BenchMode::Measure,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        // Hard cap so a mis-specified bench cannot spin forever.
        if samples_ns.len() >= c.sample_size && meas_start.elapsed() >= c.measurement_time {
            break;
        }
        if samples_ns.len() >= 10 * c.sample_size {
            break;
        }
    }
    Stats { samples_ns }
}

/// Declares a benchmark group runner (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` (shim of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards flags like `--bench`; this harness has
            // no CLI surface, so flags are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| {
                let s: u64 = (0..n).sum();
                total = total.wrapping_add(s);
                s
            });
        });
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn bench_function_smoke() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}
