//! # timing-wheels
//!
//! A complete Rust reproduction of George Varghese and Tony Lauck, *"Hashed
//! and Hierarchical Timing Wheels: Data Structures for the Efficient
//! Implementation of a Timer Facility"* (SOSP 1987): all seven timer
//! schemes, the substrates the paper draws on (discrete event simulation,
//! a transport protocol, hardware assist, SMP variants), and a benchmark
//! harness regenerating every figure and table.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `tw-core` | the `TimerScheme` model, Schemes 4–7 (the wheels), arena, counters, oracle |
//! | [`baselines`] | `tw-baselines` | Schemes 1–3 and the classic delta list |
//! | [`workload`] | `tw-workload` | distributions, arrivals, traces, stats, queueing theory |
//! | [`des`] | `tw-des` | §4.2 time-flow mechanisms, the Figure 7 sim wheel, a logic simulator |
//! | [`netsim`] | `tw-netsim` | the §1 transport workload and rate-based flow control |
//! | [`hwsim`] | `tw-hwsim` | Appendix A.1 hardware-assist interrupt models |
//! | [`concurrent`] | `tw-concurrent` | Appendix A.2: coarse lock, sharded wheel, timer service |
//! | [`async_timers`] | `tw-async` | futures-based `Sleep`/`Timeout`/`Interval` atop the timer service |
//!
//! # Quickstart
//!
//! ```
//! use timing_wheels::prelude::*;
//!
//! // Scheme 6: a 256-slot hashed wheel, O(1) start/stop, any interval size.
//! let mut timers: HashedWheelUnsorted<&str> = HashedWheelUnsorted::new(256);
//! let ack = timers.start_timer(TickDelta(150), "retransmit pkt 7").unwrap();
//! timers.start_timer(TickDelta(1_000_000), "connection keepalive").unwrap();
//!
//! // The ack arrived in time: cancel the retransmission.
//! timers.stop_timer(ack).unwrap();
//!
//! // Drive PER_TICK_BOOKKEEPING.
//! let fired = timers.collect_ticks(1_000_000);
//! assert_eq!(fired.len(), 1);
//! assert_eq!(fired[0].payload, "connection keepalive");
//! ```
//!
//! See `examples/` for runnable scenarios and DESIGN.md / EXPERIMENTS.md
//! for the paper-reproduction index.

#![warn(missing_docs)]

// `async` is a keyword, so the async layer re-exports as `async_timers`.
pub use tw_async as async_timers;
pub use tw_baselines as baselines;
pub use tw_concurrent as concurrent;
pub use tw_core as core;
pub use tw_des as des;
pub use tw_hwsim as hwsim;
pub use tw_netsim as netsim;
#[cfg(feature = "obs")]
pub use tw_obs as obs;
pub use tw_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use tw_baselines::{
        BinaryHeapScheme, DeltaListScheme, LeftistScheme, OrderedListScheme, SearchFrom,
        UnbalancedBstScheme, UnorderedScheme,
    };
    pub use tw_core::facility::{ExpiryAction, TimerFacility};
    pub use tw_core::wheel::{
        BasicWheel, ClockworkWheel, HashedWheelSorted, HashedWheelUnsorted, HierarchicalWheel,
        HybridWheel, InsertRule, LawnWheel, LevelSizes, MigrationPolicy, OverflowPolicy,
        WheelConfig,
    };
    pub use tw_core::{
        DeadlinePeek, Expired, NoopObserver, Observed, Observer, OracleScheme, RequestId, Tick,
        TickDelta, TimerError, TimerHandle, TimerScheme, TimerSchemeExt,
    };
}
